"""Wall-clock scaling benchmark for the sharded control plane.

Sweeps fleet size x shard count and measures real wall-clock time for
one ``attest_fleet`` pass over the whole fleet:

- a **1-shard** plane is the single-controller baseline: one engine
  pays every server's scheduler ticks and credit accounting across the
  whole fleet's attestation window;
- a **k-shard** plane splits the same total hardware into k independent
  deployments, so each engine only advances its own slice — the
  near-linear speedup this benchmark asserts.

Every configuration at a given fleet size uses (as close as rounding
allows) the *same total hardware*, launches the *same logical VMs*
(the plane mints identical vid sequences), and the benchmark asserts
the per-VM reports of every k-shard run are byte-identical to the
1-shard run before it reports any speedup — a fast shard layout that
changed appraisal results would be a bug, not a win.

Fleet provisioning is untimed and uses a zero-cost launch window (the
launch-stage CostModel operations are zeroed, VMs launch without
startup properties, and each VM is registered with its shard's
Attestation Server explicitly) so even the 4096-VM cells set up in
seconds; the timed region is exactly the fleet attestation.

Outputs ``BENCH_shard_scale.json`` and appends a table to
``bench_tables.txt``. Exits non-zero if the speedup of the largest
shard count over 1 shard at the largest fleet size falls below
``--min-speedup`` (default 3x at the full 4096-VM / 8-shard sweep; the
CI smoke job runs ``--quick`` with a lower gate at 256 VMs).

Usage::

    PYTHONPATH=src python benchmarks/bench_shard_scale.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from _tables import print_table  # noqa: E402

from repro import SecurityProperty  # noqa: E402
from repro.crypto.signatures import clear_verify_memo  # noqa: E402
from repro.protocol import messages as msg  # noqa: E402
from repro.shard import ShardPlane  # noqa: E402

SEED = 7
PROPERTY = SecurityProperty.RUNTIME_INTEGRITY

#: small-flavor VMs one 4-pCPU/32GB server can host (memory-bound:
#: 16 x 2048 MB; vCPU overcommit allows the same 16)
VMS_PER_SERVER = 16
#: extra per-shard capacity over the even split, absorbing ring skew
HEADROOM = 1.35
#: session keys pre-generated per secure server (a fleet call consumes
#: only a couple of sessions per server; exhaustion falls back to
#: on-demand keygen inside the timed region)
PREWARM_SESSIONS = 8

#: CostModel operations charged by the launch pipeline — zeroed during
#: the untimed provisioning window, restored before the timed attest
LAUNCH_OPS = (
    "db_access",
    "scheduling_base",
    "scheduling_property_filter",
    "networking",
    "block_device_mapping",
    "spawn_base",
    "boot_per_flavor_vcpu",
    "image_fetch_per_mb",
    "tpm_extend",
)


def _servers_total(num_vms: int) -> int:
    """Total servers a fleet needs, with skew headroom."""
    return math.ceil(num_vms / VMS_PER_SERVER * HEADROOM)


def _build_plane(num_vms: int, num_shards: int, key_bits: int):
    """A fresh k-shard plane hosting ``num_vms`` attestable VMs.

    Setup is untimed: launch-stage costs are zeroed so provisioning
    advances (almost) no simulated time, VMs launch without startup
    properties, and runtime-integrity interpretation references are
    registered with each shard's AS explicitly.
    """
    per_shard = max(1, math.ceil(_servers_total(num_vms) / num_shards))
    plane = ShardPlane(
        num_shards=num_shards,
        seed=SEED,
        num_servers=per_shard,
        num_pcpus=4,
        key_bits=key_bits,
        network_latency_ms=0.0,
    )
    customer = plane.register_customer("operator")

    saved: dict[str, dict[str, float]] = {}
    for name, shard in plane.shards.items():
        saved[name] = {op: shard.cloud.cost.costs_ms[op] for op in LAUNCH_OPS}
        for op in LAUNCH_OPS:
            shard.cloud.cost.set_cost(op, 0.0)
    vids = []
    for _ in range(num_vms):
        result = customer.launch_vm("small", "cirros", workload={"name": "idle"})
        if not result.accepted:
            raise RuntimeError(
                f"launch rejected at VM {len(vids) + 1}/{num_vms} "
                f"({num_shards} shards, {per_shard} servers each) — "
                f"raise HEADROOM"
            )
        vids.append(result.vid)
    for vid in vids:
        controller = plane.shard_of(vid).cloud.controller
        server = controller.database.vm(vid).server
        controller.endpoint.call(
            controller.database.server(server).attestation_server,
            {
                msg.KEY_TYPE: "register_vm",
                msg.KEY_VID: str(vid),
                "image_name": "cirros",
            },
        )
    for name, shard in plane.shards.items():
        for op, base_ms in saved[name].items():
            shard.cloud.cost.set_cost(op, base_ms)

    plane.prewarm_for_fleet(PREWARM_SESSIONS)
    return plane, customer, vids, per_shard


def bench_cell(num_vms: int, num_shards: int, key_bits: int) -> tuple[dict, list]:
    """Time one full-fleet attestation on a fresh k-shard plane."""
    clear_verify_memo()
    plane, customer, vids, per_shard = _build_plane(
        num_vms, num_shards, key_bits
    )
    # warm up channels/caches with one untimed round per shard
    warmed = set()
    for vid in vids:
        shard_name = plane.placement[str(vid)]
        if shard_name not in warmed:
            warmed.add(shard_name)
            customer.attest(vid, PROPERTY)
    requests = [(vid, PROPERTY) for vid in vids]
    start = time.perf_counter()
    fleet = customer.attest_fleet(requests)
    seconds = time.perf_counter() - start
    reports = [r.report.to_dict() for r in fleet.results]
    if not fleet.healthy:
        raise AssertionError("fleet came back unhealthy — benchmark is void")
    return {
        "n": num_vms,
        "shards": num_shards,
        "servers_per_shard": per_shard,
        "total_servers": per_shard * num_shards,
        "seconds": round(seconds, 6),
        "rounds_per_sec": round(num_vms / seconds, 3),
        "cross_shard_root": fleet.root.hex()[:16] if fleet.root else None,
    }, reports


def run(args: argparse.Namespace) -> dict:
    sizes = [int(s) for s in args.sizes.split(",") if s]
    shard_counts = [int(s) for s in args.shards.split(",") if s]
    cells: dict[str, dict[str, dict]] = {}
    for num_vms in sizes:
        row: dict[str, dict] = {}
        baseline_reports: list | None = None
        baseline_seconds: float | None = None
        for num_shards in shard_counts:
            cell, reports = bench_cell(num_vms, num_shards, args.key_bits)
            if num_shards == min(shard_counts):
                baseline_reports = reports
                baseline_seconds = cell["seconds"]
                cell["speedup_vs_base"] = 1.0
            else:
                if reports != baseline_reports:
                    raise AssertionError(
                        f"{num_shards}-shard reports diverge from the "
                        f"{min(shard_counts)}-shard reports at "
                        f"{num_vms} VMs — sharding changed appraisal "
                        f"results, refusing to report a speedup"
                    )
                cell["speedup_vs_base"] = round(
                    baseline_seconds / cell["seconds"], 2
                )
            row[f"s{num_shards}"] = cell
            print(
                f"  {num_vms} VMs x {num_shards} shard(s): "
                f"{cell['seconds']:.2f}s "
                f"({cell['rounds_per_sec']:,.1f} rounds/sec, "
                f"{cell['speedup_vs_base']:.2f}x)",
                flush=True,
            )
        cells[f"n{num_vms}"] = row
    top_n, top_k = max(sizes), max(shard_counts)
    headline = cells[f"n{top_n}"][f"s{top_k}"]["speedup_vs_base"]
    return {
        "sizes": sizes,
        "shard_counts": shard_counts,
        "cells": cells,
        "headline": {
            "num_vms": top_n,
            "shards": top_k,
            "speedup_vs_1shard": headline,
        },
        "reports_identical": True,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="256-VM max sweep over 1/4 shards (CI smoke)")
    parser.add_argument("--sizes", default="32,256,1024,4096",
                        help="comma-separated fleet sizes (default "
                             "32,256,1024,4096)")
    parser.add_argument("--shards", default="1,2,4,8",
                        help="comma-separated shard counts; the smallest "
                             "is the speedup baseline (default 1,2,4,8)")
    parser.add_argument("--key-bits", type=int, default=512,
                        help="RSA modulus size (default 512, the sim "
                             "default; scaling is key-size independent)")
    parser.add_argument("--out",
                        default=str(REPO_ROOT / "BENCH_shard_scale.json"),
                        help="machine-readable output path")
    parser.add_argument("--tables", default=str(REPO_ROOT / "bench_tables.txt"),
                        help="append the human table here ('' to skip)")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="fail if the largest-sweep speedup over the "
                             "baseline shard count drops below this "
                             "(0 disables)")
    args = parser.parse_args(argv)
    if args.quick:
        args.sizes = "32,256"
        args.shards = "1,4"
        if args.min_speedup == 3.0:
            args.min_speedup = 1.2

    results = run(args)
    top = results["headline"]
    title = (
        f"Sharded control-plane scaling (max {top['num_vms']} VMs, "
        f"{args.key_bits}-bit keys{', quick' if args.quick else ''})"
    )
    headers = ["VMs", "shards", "servers", "seconds", "rounds/sec",
               "speedup"]
    rows = []
    for num_vms in results["sizes"]:
        for num_shards in results["shard_counts"]:
            cell = results["cells"][f"n{num_vms}"][f"s{num_shards}"]
            rows.append([
                num_vms, num_shards, cell["total_servers"],
                f"{cell['seconds']:.3f}",
                f"{cell['rounds_per_sec']:,.1f}",
                f"{cell['speedup_vs_base']:.2f}x",
            ])
    print_table(title, headers, rows)
    print(
        f"headline: {top['shards']} shards vs 1 at {top['num_vms']} VMs = "
        f"{top['speedup_vs_1shard']:.2f}x "
        f"(reports byte-identical: {results['reports_identical']})"
    )

    payload = {
        "benchmark": "shard_scale",
        "seed": SEED,
        "key_bits": args.key_bits,
        "quick": args.quick,
        "python": sys.version.split()[0],
        "results": results,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.out}")

    if args.tables:
        with open(args.tables, "a") as fh:
            fh.write(f"\n=== {title} ===\n")
            widths = [max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
                      for i in range(len(headers))]
            fh.write("  ".join(str(h).ljust(w)
                               for h, w in zip(headers, widths)) + "\n")
            for row in rows:
                fh.write("  ".join(str(c).ljust(w)
                                   for c, w in zip(row, widths)) + "\n")
        print(f"appended table to {args.tables}")

    if args.min_speedup and top["speedup_vs_1shard"] < args.min_speedup:
        print(
            f"FAIL: shard-scale speedup {top['speedup_vs_1shard']:.2f}x "
            f"< required {args.min_speedup:.1f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
