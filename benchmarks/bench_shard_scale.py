"""Wall-clock scaling benchmark for the sharded control plane.

Sweeps fleet size x shard count and measures real wall-clock time for
one ``attest_fleet`` pass over the whole fleet, separating the two
distinct speedups sharding buys:

- **batching speedup** (the ``speedup_vs_base`` column): a 1-shard
  plane is the single-controller baseline — one engine pays every
  server's scheduler ticks and credit accounting across the whole
  fleet's attestation window; a k-shard plane splits the same total
  hardware into k independent deployments, so each engine only
  advances its own slice. This is algorithmic: it shows up even with
  every shard executed serially in one process.
- **parallel wall-clock speedup** (the ``parallel`` columns): with the
  forked shard executor (:mod:`repro.shard.parallel`), the k shards'
  work actually runs on separate cores. Each multi-shard cell is timed
  twice — serial executor, then forked executor at the ``--workers``
  sweep — and the parallel speedup is serial seconds over parallel
  seconds *for the same cell*.

Every configuration at a given fleet size uses (as close as rounding
allows) the *same total hardware* and launches the *same logical VMs*
(the plane mints identical vid sequences). Before any speedup is
reported the benchmark asserts byte-identity twice over: every k-shard
serial run's per-VM reports must equal the 1-shard run's, and every
parallel run's reports *and cross-shard root* must equal its own
cell's serial run — a fast executor that changed appraisal results
would be a bug, not a win.

Fleet provisioning is untimed and uses a zero-cost launch window (the
launch-stage CostModel operations are zeroed, VMs launch without
startup properties, and each VM is registered with its shard's
Attestation Server explicitly) so even the 4096-VM cells set up in
seconds; the timed region is exactly the fleet attestation. All
provisioning runs through the plane's executor command surface, so
forked workers see the exact provisioned state the serial plane does.

Outputs ``BENCH_shard_scale.json`` and appends a table to
``bench_tables.txt``. Exits non-zero if the batching speedup of the
largest shard count at the largest fleet size falls below
``--min-speedup``, or if the parallel speedup at that cell falls below
``--min-parallel-speedup`` — the latter gate is only meaningful on a
multi-core host and is waived (loudly, and recorded in the JSON) when
``os.cpu_count() < 2``.

Usage::

    PYTHONPATH=src python benchmarks/bench_shard_scale.py [--quick]
        [--workers 0|2,8] [--min-parallel-speedup 2.5]
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from _tables import print_table  # noqa: E402

from repro import SecurityProperty  # noqa: E402
from repro.crypto.signatures import clear_verify_memo  # noqa: E402
from repro.protocol import messages as msg  # noqa: E402
from repro.shard import ShardPlane  # noqa: E402

SEED = 7
PROPERTY = SecurityProperty.RUNTIME_INTEGRITY

#: small-flavor VMs one 4-pCPU/32GB server can host (memory-bound:
#: 16 x 2048 MB; vCPU overcommit allows the same 16)
VMS_PER_SERVER = 16
#: extra per-shard capacity over the even split, absorbing ring skew
HEADROOM = 1.35
#: session keys pre-generated per secure server (a fleet call consumes
#: only a couple of sessions per server; exhaustion falls back to
#: on-demand keygen inside the timed region)
PREWARM_SESSIONS = 8

#: CostModel operations charged by the launch pipeline — zeroed during
#: the untimed provisioning window, restored before the timed attest
LAUNCH_OPS = (
    "db_access",
    "scheduling_base",
    "scheduling_property_filter",
    "networking",
    "block_device_mapping",
    "spawn_base",
    "boot_per_flavor_vcpu",
    "image_fetch_per_mb",
    "tpm_extend",
)


def _servers_total(num_vms: int) -> int:
    """Total servers a fleet needs, with skew headroom."""
    return math.ceil(num_vms / VMS_PER_SERVER * HEADROOM)


# ----------------------------------------------------------------------
# executor-dispatched provisioning helpers: these run *inside* the
# process owning the shard (a forked worker under --workers), so the
# provisioned state is authoritative wherever the shard actually lives
# ----------------------------------------------------------------------

def _zero_launch_costs(shard) -> dict:
    """Zero the launch-stage costs on one shard; returns the originals."""
    saved = {op: shard.cloud.cost.costs_ms[op] for op in LAUNCH_OPS}
    for op in LAUNCH_OPS:
        shard.cloud.cost.set_cost(op, 0.0)
    return saved


def _restore_launch_costs(shard, saved: dict) -> None:
    """Restore one shard's launch-stage costs after provisioning."""
    for op, base_ms in saved.items():
        shard.cloud.cost.set_cost(op, base_ms)


def _register_vms(shard, vids: list, image_name: str) -> int:
    """Register launched VMs with their shard's Attestation Server."""
    controller = shard.cloud.controller
    for vid in vids:
        server = controller.database.vm(vid).server
        controller.endpoint.call(
            controller.database.server(server).attestation_server,
            {
                msg.KEY_TYPE: "register_vm",
                msg.KEY_VID: str(vid),
                "image_name": image_name,
            },
        )
    return len(vids)


def _build_plane(num_vms: int, num_shards: int, key_bits: int, workers: int):
    """A fresh k-shard plane hosting ``num_vms`` attestable VMs.

    ``workers > 0`` builds the plane on the forked shard executor.
    Setup is untimed: launch-stage costs are zeroed so provisioning
    advances (almost) no simulated time, VMs launch without startup
    properties, and runtime-integrity interpretation references are
    registered with each shard's AS explicitly — all dispatched as
    executor commands so serial and forked cells provision identically.
    """
    per_shard = max(1, math.ceil(_servers_total(num_vms) / num_shards))
    plane = ShardPlane(
        num_shards=num_shards,
        seed=SEED,
        num_servers=per_shard,
        num_pcpus=4,
        key_bits=key_bits,
        network_latency_ms=0.0,
        parallel=workers > 0,
        parallel_workers=workers,
    )
    customer = plane.register_customer("operator")

    saved = {
        name: plane.executor.call(name, ("apply", _zero_launch_costs, ()))
        for name in sorted(plane.shards)
    }
    vids = []
    for _ in range(num_vms):
        result = customer.launch_vm("small", "cirros", workload={"name": "idle"})
        if not result.accepted:
            raise RuntimeError(
                f"launch rejected at VM {len(vids) + 1}/{num_vms} "
                f"({num_shards} shards, {per_shard} servers each) — "
                f"raise HEADROOM"
            )
        vids.append(result.vid)
    by_shard: dict[str, list] = {}
    for vid in vids:
        by_shard.setdefault(plane.placement[str(vid)], []).append(vid)
    for name in sorted(by_shard):
        plane.executor.call(
            name, ("apply", _register_vms, (by_shard[name], "cirros"))
        )
    for name in sorted(plane.shards):
        plane.executor.call(
            name, ("apply", _restore_launch_costs, (saved[name],))
        )

    plane.prewarm_for_fleet(PREWARM_SESSIONS)
    return plane, customer, vids, per_shard


def bench_cell(
    num_vms: int, num_shards: int, key_bits: int, workers: int = 0
) -> tuple[dict, list, bytes | None]:
    """Time one full-fleet attestation on a fresh k-shard plane.

    Returns the cell record, the per-VM report dicts (for byte-identity
    checks) and the full cross-shard root.
    """
    clear_verify_memo()
    plane, customer, vids, per_shard = _build_plane(
        num_vms, num_shards, key_bits, workers
    )
    try:
        mode = plane.executor.mode
        # warm up channels/caches with one untimed round per shard
        warmed = set()
        for vid in vids:
            shard_name = plane.placement[str(vid)]
            if shard_name not in warmed:
                warmed.add(shard_name)
                customer.attest(vid, PROPERTY)
        requests = [(vid, PROPERTY) for vid in vids]
        start = time.perf_counter()
        fleet = customer.attest_fleet(requests)
        seconds = time.perf_counter() - start
        reports = [r.report.to_dict() for r in fleet.results]
        if not fleet.healthy:
            raise AssertionError("fleet came back unhealthy — benchmark is void")
        return {
            "n": num_vms,
            "shards": num_shards,
            "servers_per_shard": per_shard,
            "total_servers": per_shard * num_shards,
            "mode": mode,
            "seconds": round(seconds, 6),
            "rounds_per_sec": round(num_vms / seconds, 3),
            "cross_shard_root": fleet.root.hex()[:16] if fleet.root else None,
        }, reports, fleet.root
    finally:
        plane.close()


def _resolved_workers(sweep: list[int], num_shards: int) -> list[int]:
    """The distinct forked-worker counts to time for one cell.

    ``0`` in the sweep means "one worker per shard"; everything is
    capped at the shard count (extra workers would idle) and 1-shard
    cells are skipped — a single worker measures pipe overhead, not
    parallelism.
    """
    if num_shards < 2:
        return []
    return sorted({min(w if w > 0 else num_shards, num_shards)
                   for w in sweep})


def run(args: argparse.Namespace) -> dict:
    sizes = [int(s) for s in args.sizes.split(",") if s]
    shard_counts = [int(s) for s in args.shards.split(",") if s]
    worker_sweep = [int(w) for w in str(args.workers).split(",") if w != ""]
    parallel_possible = True
    cells: dict[str, dict[str, dict]] = {}
    for num_vms in sizes:
        row: dict[str, dict] = {}
        baseline_reports: list | None = None
        baseline_seconds: float | None = None
        for num_shards in shard_counts:
            cell, reports, root = bench_cell(
                num_vms, num_shards, args.key_bits, workers=0
            )
            serial_seconds = cell["seconds"]
            if num_shards == min(shard_counts):
                baseline_reports = reports
                baseline_seconds = serial_seconds
                cell["speedup_vs_base"] = 1.0
            else:
                if reports != baseline_reports:
                    raise AssertionError(
                        f"{num_shards}-shard reports diverge from the "
                        f"{min(shard_counts)}-shard reports at "
                        f"{num_vms} VMs — sharding changed appraisal "
                        f"results, refusing to report a speedup"
                    )
                cell["speedup_vs_base"] = round(
                    baseline_seconds / serial_seconds, 2
                )
            print(
                f"  {num_vms} VMs x {num_shards} shard(s): "
                f"{serial_seconds:.2f}s serial "
                f"({cell['rounds_per_sec']:,.1f} rounds/sec, "
                f"{cell['speedup_vs_base']:.2f}x batching)",
                flush=True,
            )
            cell["parallel"] = None
            cell["parallel_sweep"] = []
            for resolved in _resolved_workers(worker_sweep, num_shards):
                par_cell, par_reports, par_root = bench_cell(
                    num_vms, num_shards, args.key_bits, workers=resolved
                )
                if par_cell["mode"] != "parallel":
                    # no fork on this host: record it once and stop
                    # trying — the serial numbers above still stand
                    parallel_possible = False
                    print("  (forked executor unavailable on this host; "
                          "skipping parallel cells)", flush=True)
                    break
                if par_reports != reports or par_root != root:
                    raise AssertionError(
                        f"parallel reports diverge from serial at "
                        f"{num_vms} VMs x {num_shards} shards x "
                        f"{resolved} workers — the executor changed "
                        f"appraisal results, refusing to report a speedup"
                    )
                entry = {
                    "workers": resolved,
                    "seconds": par_cell["seconds"],
                    "rounds_per_sec": par_cell["rounds_per_sec"],
                    "speedup_vs_serial": round(
                        serial_seconds / par_cell["seconds"], 2
                    ),
                    "identical": True,
                }
                cell["parallel_sweep"].append(entry)
                # the canonical per-cell parallel number: the largest
                # worker count timed (sweep order is ascending)
                cell["parallel"] = entry
                print(
                    f"    + {resolved} worker(s): "
                    f"{entry['seconds']:.2f}s parallel "
                    f"({entry['rounds_per_sec']:,.1f} rounds/sec, "
                    f"{entry['speedup_vs_serial']:.2f}x vs serial, "
                    f"byte-identical)",
                    flush=True,
                )
            row[f"s{num_shards}"] = cell
        cells[f"n{num_vms}"] = row
    top_n, top_k = max(sizes), max(shard_counts)
    top_cell = cells[f"n{top_n}"][f"s{top_k}"]
    parallel_headline = None
    if top_cell["parallel"] is not None:
        parallel_headline = {
            "num_vms": top_n,
            "shards": top_k,
            "workers": top_cell["parallel"]["workers"],
            "speedup_vs_serial": top_cell["parallel"]["speedup_vs_serial"],
        }
    return {
        "sizes": sizes,
        "shard_counts": shard_counts,
        "worker_sweep": worker_sweep,
        "host_cpus": os.cpu_count() or 1,
        "parallel_available": parallel_possible,
        "cells": cells,
        "headline": {
            "num_vms": top_n,
            "shards": top_k,
            "speedup_vs_1shard": top_cell["speedup_vs_base"],
        },
        "parallel_headline": parallel_headline,
        "reports_identical": True,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="256-VM max sweep over 1/4 shards at 2 "
                             "workers (CI smoke)")
    parser.add_argument("--sizes", default="32,256,1024,4096",
                        help="comma-separated fleet sizes (default "
                             "32,256,1024,4096)")
    parser.add_argument("--shards", default="1,2,4,8",
                        help="comma-separated shard counts; the smallest "
                             "is the speedup baseline (default 1,2,4,8)")
    parser.add_argument("--workers", default="0",
                        help="comma-separated forked-worker counts to "
                             "time per multi-shard cell; 0 = one worker "
                             "per shard (default 0)")
    parser.add_argument("--key-bits", type=int, default=512,
                        help="RSA modulus size (default 512, the sim "
                             "default; scaling is key-size independent)")
    parser.add_argument("--out",
                        default=str(REPO_ROOT / "BENCH_shard_scale.json"),
                        help="machine-readable output path")
    parser.add_argument("--tables", default=str(REPO_ROOT / "bench_tables.txt"),
                        help="append the human table here ('' to skip)")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="fail if the largest-sweep batching speedup "
                             "over the baseline shard count drops below "
                             "this (0 disables)")
    parser.add_argument("--min-parallel-speedup", type=float, default=2.5,
                        help="fail if the largest-sweep parallel speedup "
                             "over its own serial cell drops below this; "
                             "waived on single-core hosts (0 disables)")
    args = parser.parse_args(argv)
    if args.quick:
        args.sizes = "32,256"
        args.shards = "1,4"
        if args.workers == "0":
            args.workers = "2"
        if args.min_speedup == 3.0:
            args.min_speedup = 1.2
        if args.min_parallel_speedup == 2.5:
            args.min_parallel_speedup = 1.5

    results = run(args)
    top = results["headline"]
    par = results["parallel_headline"]
    title = (
        f"Sharded control-plane scaling (max {top['num_vms']} VMs, "
        f"{args.key_bits}-bit keys{', quick' if args.quick else ''})"
    )
    headers = ["VMs", "shards", "servers", "serial s", "rounds/sec",
               "batching", "workers", "parallel s", "par speedup"]
    rows = []
    for num_vms in results["sizes"]:
        for num_shards in results["shard_counts"]:
            cell = results["cells"][f"n{num_vms}"][f"s{num_shards}"]
            serial_columns = [
                num_vms, num_shards, cell["total_servers"],
                f"{cell['seconds']:.3f}",
                f"{cell['rounds_per_sec']:,.1f}",
                f"{cell['speedup_vs_base']:.2f}x",
            ]
            sweep = cell["parallel_sweep"]
            if not sweep:
                rows.append(serial_columns + ["-", "-", "-"])
                continue
            for index, entry in enumerate(sweep):
                prefix = serial_columns if index == 0 else [
                    "", "", "", "", "", ""
                ]
                rows.append(prefix + [
                    entry["workers"],
                    f"{entry['seconds']:.3f}",
                    f"{entry['speedup_vs_serial']:.2f}x",
                ])
    print_table(title, headers, rows)
    print(
        f"headline: {top['shards']} shards vs 1 at {top['num_vms']} VMs = "
        f"{top['speedup_vs_1shard']:.2f}x batching "
        f"(reports byte-identical: {results['reports_identical']})"
    )
    if par is not None:
        print(
            f"parallel: {par['workers']} workers at {par['num_vms']} VMs x "
            f"{par['shards']} shards = {par['speedup_vs_serial']:.2f}x "
            f"vs the same cell's serial executor "
            f"({results['host_cpus']} host CPU(s))"
        )

    if not args.min_parallel_speedup or par is None:
        results["parallel_gate"] = "disabled"
    elif results["host_cpus"] < 2:
        results["parallel_gate"] = "waived-single-core"
    else:
        results["parallel_gate"] = "enforced"
    payload = {
        "benchmark": "shard_scale",
        "seed": SEED,
        "key_bits": args.key_bits,
        "quick": args.quick,
        "python": sys.version.split()[0],
        "results": results,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.out}")

    if args.tables:
        with open(args.tables, "a") as fh:
            fh.write(f"\n=== {title} ===\n")
            widths = [max(len(str(headers[i])), *(len(str(r[i])) for r in rows))
                      for i in range(len(headers))]
            fh.write("  ".join(str(h).ljust(w)
                               for h, w in zip(headers, widths)) + "\n")
            for row in rows:
                fh.write("  ".join(str(c).ljust(w)
                                   for c, w in zip(row, widths)) + "\n")
        print(f"appended table to {args.tables}")

    status = 0
    if args.min_speedup and top["speedup_vs_1shard"] < args.min_speedup:
        print(
            f"FAIL: shard-scale batching speedup "
            f"{top['speedup_vs_1shard']:.2f}x "
            f"< required {args.min_speedup:.1f}x",
            file=sys.stderr,
        )
        status = 1
    if results["parallel_gate"] != "disabled":
        if results["parallel_gate"] == "waived-single-core":
            print(
                f"note: parallel speedup gate "
                f"({args.min_parallel_speedup:.1f}x) waived — single-core "
                f"host; byte-identity was still asserted on every "
                f"parallel cell",
            )
        elif par["speedup_vs_serial"] < args.min_parallel_speedup:
            print(
                f"FAIL: parallel wall-clock speedup "
                f"{par['speedup_vs_serial']:.2f}x "
                f"< required {args.min_parallel_speedup:.1f}x",
                file=sys.stderr,
            )
            status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
