"""§7.2.2 — Protocol verification.

Runs the symbolic Dolev-Yao verifier over the attestation protocol and
reports each property verdict, reproducing the paper's ProVerif
analysis: all six secrecy / integrity / authentication properties hold
on the standard protocol. The weakened variants double as soundness
checks: the verifier must *find* the attack each removed protection
was preventing.
"""

from _tables import print_table

from repro.verification import ProtocolVariant, ProtocolVerifier
from repro.verification.verifier import trust_dependency_matrix


def run_all_variants() -> dict[str, list]:
    return {
        variant.value: ProtocolVerifier(variant).verify_all()
        for variant in ProtocolVariant
    }


def test_protocol_verification(benchmark):
    results = benchmark.pedantic(run_all_variants, rounds=1, iterations=1)

    for variant, verdicts in results.items():
        rows = [
            [r.property_id, r.description,
             "verified" if r.holds else "ATTACK FOUND"]
            for r in verdicts
        ]
        print_table(f"protocol verification — {variant} variant",
                    ["id", "property", "verdict"], rows)

    standard = results[ProtocolVariant.STANDARD.value]
    # the paper's result: every property of §7.2.2 verifies
    assert all(r.holds for r in standard)
    assert {"①", "②", "③", "④", "⑤", "⑥"} <= {r.property_id for r in standard}

    # soundness: each weakened variant loses exactly the right guarantees
    plaintext = results[ProtocolVariant.PLAINTEXT.value]
    assert any(not r.holds and r.property_id == "②" for r in plaintext)
    no_nonces = results[ProtocolVariant.NO_NONCES.value]
    assert any(not r.holds and r.property_id == "replay" for r in no_nonces)
    key_reuse = results[ProtocolVariant.IDENTITY_KEY_REUSE.value]
    assert any(not r.holds and r.property_id == "anonymity" for r in key_reuse)


def test_trust_dependency_matrix(benchmark):
    """Which guarantees each long-term key carries (leak analysis)."""
    matrix = benchmark.pedantic(trust_dependency_matrix, rounds=1, iterations=1)

    rows = [
        [key, len(failures),
         "; ".join(sorted({f.property_id for f in failures}))]
        for key, failures in matrix.items()
    ]
    print_table(
        "Trust dependencies: properties broken per leaked long-term key",
        ["leaked key", "broken queries", "property classes"],
        rows,
    )

    # the threat model's trust assumptions, quantified: the controller
    # and AS keys carry the most guarantees; the customer's own key the
    # fewest; the pCA key exactly the certification property
    assert len(matrix["SKc"]) > len(matrix["SKcust"])
    assert len(matrix["SKa"]) > len(matrix["SKcust"])
    assert {f.property_id for f in matrix["SKpca"]} == {"⑥"}
