"""Ablation — measurement collection mechanism vs attestation overhead.

Paper §7.1.2 explains why Fig. 10 shows zero overhead: "This is for
CPU-resource monitoring, where the measurements are taken during the VM
switch — the VMM Profile Tool does not intercept the VM's execution.
Whether runtime attestation causes performance degradation to the VM
execution time depends on the measurement collection mechanism."

This bench makes both halves measurable: non-intercepting collection
(the default) costs nothing at any frequency; an intercepting VMI scan
that pauses the guest costs work time proportional to frequency × scan
length.

Profiles: the full profile (default) regenerates the paper table for
``bench_tables.txt``; ``BENCH_PROFILE=fast`` halves the measurement
window for CI smoke (same frequencies, same assertions).
"""

import os

from _tables import print_table

from repro import CloudMonatt, SecurityProperty

FAST = os.environ.get("BENCH_PROFILE", "").lower() == "fast"
SCAN_MS = 150.0
MEASURE_WINDOW_MS = 60_000.0 if FAST else 120_000.0
FREQUENCIES = {"1min": 60_000.0, "10s": 10_000.0, "2s": 2_000.0}


def work_rate(intercepting: bool, frequency_ms) -> float:
    cloud = CloudMonatt(num_servers=1, seed=37)
    if intercepting:
        # replace the fleet with one intercepting-VMI server
        cloud.servers.clear()
        cloud.controller.database._servers.clear()
        cloud.add_server(intercepting_vmi_scan_ms=SCAN_MS)
    customer = cloud.register_customer("alice")
    vm = customer.launch_vm(
        "large", "ubuntu",
        properties=[SecurityProperty.RUNTIME_INTEGRITY,
                    SecurityProperty.STARTUP_INTEGRITY],
        workload={"name": "database"},
    )
    if frequency_ms is not None:
        customer.start_periodic_attestation(
            vm.vid, SecurityProperty.RUNTIME_INTEGRITY, frequency_ms=frequency_ms
        )
    server = cloud.server_of(vm.vid)
    domain = server.hypervisor.domains[vm.vid]
    start_cpu = sum(v.runtime_until(cloud.now) for v in domain.vcpus)
    start_time = cloud.now
    cloud.run_for(MEASURE_WINDOW_MS)
    end_cpu = sum(v.runtime_until(cloud.now) for v in domain.vcpus)
    return (end_cpu - start_cpu) / (cloud.now - start_time)


def run_matrix() -> dict[str, dict[str, float]]:
    results: dict[str, dict[str, float]] = {}
    for label, intercepting in (("switch-time (paper)", False),
                                ("intercepting scan", True)):
        baseline = work_rate(intercepting, None)
        results[label] = {
            freq_label: work_rate(intercepting, freq) / baseline
            for freq_label, freq in FREQUENCIES.items()
        }
    return results


def test_measurement_mechanism_ablation(benchmark):
    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    rows = [
        [mechanism] + [f"{results[mechanism][f]:.1%}" for f in FREQUENCIES]
        for mechanism in results
    ]
    print_table(
        "Ablation: collection mechanism vs relative VM performance "
        f"(scan pause {SCAN_MS:.0f} ms)",
        ["mechanism"] + list(FREQUENCIES),
        rows,
    )

    switch_time = results["switch-time (paper)"]
    intercepting = results["intercepting scan"]
    # the paper's mechanism: no degradation at any frequency
    assert all(value > 0.97 for value in switch_time.values())
    # intercepting collection: fine at low frequency...
    assert intercepting["1min"] > 0.97
    # ...measurable at high frequency (150 ms pause / 2 s period ~ 7%)
    assert intercepting["2s"] < 0.96
    # and monotone in frequency
    assert intercepting["2s"] < intercepting["10s"] <= 1.01