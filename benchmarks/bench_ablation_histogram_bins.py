"""Ablation — Trust Evidence Register count for covert-channel detection.

The paper uses 30 one-millisecond interval counters and notes "a
different number can be used to save space or increase accuracy"
(§4.4.3). This bench sweeps the register count: intervals longer than
the last bin are clipped into it, so with too few registers the covert
symbols collide with the benign 30 ms timeslice peak and detection
fails.

Shape: detection works down to the point where both symbol durations
still occupy distinct bins below the clip bin; below that it breaks.
"""

from _tables import print_table

from repro.attacks import CovertChannelSender
from repro.common.identifiers import VmId
from repro.monitors import RunIntervalHistogram
from repro.monitors.monitor_module import MEAS_CPU_INTERVAL_HISTOGRAM
from repro.properties import CovertChannelInterpreter
from repro.xen import CpuBoundWorkload, Hypervisor

BIN_COUNTS = [30, 20, 10, 6, 4]
WINDOW_MS = 10_000.0


def detect_with_bins(num_bins: int, covert: bool) -> bool:
    """Returns True when the interpreter flags a covert channel."""
    hv = Hypervisor()
    watched = VmId("watched")
    monitor = RunIntervalHistogram(num_bins=num_bins)
    hv.add_monitor(monitor)
    workload = (
        CovertChannelSender([1, 0, 1, 1, 0, 0, 1, 0])
        if covert
        else CpuBoundWorkload()
    )
    hv.create_domain(watched, workload)
    hv.create_domain(VmId("corunner"), CpuBoundWorkload())
    hv.run_for(WINDOW_MS)
    report = CovertChannelInterpreter().interpret(
        watched, {MEAS_CPU_INTERVAL_HISTOGRAM: monitor.histogram(watched)}
    )
    return not report.healthy


def run_sweep() -> dict[int, dict[str, bool]]:
    return {
        bins: {
            "covert_flagged": detect_with_bins(bins, covert=True),
            "benign_flagged": detect_with_bins(bins, covert=False),
        }
        for bins in BIN_COUNTS
    }


def test_ablation_histogram_bins(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = [
        [bins,
         "detected" if cell["covert_flagged"] else "MISSED",
         "false alarm" if cell["benign_flagged"] else "clean"]
        for bins, cell in results.items()
    ]
    print_table(
        "Ablation: Trust Evidence Register (bin) count",
        ["registers", "covert channel", "benign VM"],
        rows,
    )

    # the paper's 30 registers: detect the channel, no false alarms
    assert results[30]["covert_flagged"]
    assert not results[30]["benign_flagged"]
    # still fine with moderate savings (symbols at 5 ms / 25 ms remain
    # separable at 10+ bins)
    assert results[10]["covert_flagged"]
    # too few registers: symbols collide into the clip bin -> missed
    assert not results[4]["covert_flagged"]
    # benign traffic never raises a false alarm at any size
    assert not any(cell["benign_flagged"] for cell in results.values())
