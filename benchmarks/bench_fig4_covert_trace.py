"""Fig. 4 — Cross-VM covert information leakage.

The receiver VM measures its own execution time; gaps in its execution
are the sender's CPU usage. The regenerated series is the sequence of
sender occupancy intervals the receiver observes; the decoded bit
stream and channel bandwidth are reported alongside.

Paper shape: the trace alternates between two clearly separated
interval durations encoding 0/1, and the channel carries data at a
usable bandwidth with high accuracy.
"""

from _tables import print_table

from repro.attacks import CovertChannelReceiver, CovertChannelSender, decode_intervals
from repro.attacks.covert_channel import bit_accuracy
from repro.common.identifiers import VmId
from repro.xen import Hypervisor

BITS = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1]


def run_covert_channel(duration_ms: float = 20_000.0) -> dict:
    hv = Hypervisor()
    sender = CovertChannelSender(BITS)
    receiver = CovertChannelReceiver(VmId("receiver"))
    hv.add_monitor(receiver)
    hv.create_domain(VmId("sender"), sender)
    hv.create_domain(VmId("receiver"), CovertChannelReceiver.workload())
    hv.run_for(duration_ms)
    durations = [gap for _, gap in receiver.observed_gaps]
    decoded = decode_intervals(durations, sender.zero_ms, sender.one_ms)
    best_accuracy = 0.0
    for phase in range(len(BITS)):
        pattern = BITS[phase:] + BITS[:phase]
        sent = (pattern * (len(decoded) // len(pattern) + 1))[: len(decoded)]
        best_accuracy = max(best_accuracy, bit_accuracy(sent, decoded))
    return {
        "trace": receiver.observed_gaps,
        "decoded_bits": len(decoded),
        "accuracy": best_accuracy,
        "bandwidth_bps": sender.bandwidth_bps,
        "zero_ms": sender.zero_ms,
        "one_ms": sender.one_ms,
    }


def run_fast_channel(duration_ms: float = 10_000.0) -> dict:
    """The high-rate configuration approaching the paper's 200 bps."""
    hv = Hypervisor()
    sender = CovertChannelSender(BITS, zero_ms=1.0, one_ms=5.0, gap_ms=4.0)
    receiver = CovertChannelReceiver(VmId("receiver"), min_gap_ms=0.5)
    hv.add_monitor(receiver)
    hv.create_domain(VmId("sender"), sender)
    hv.create_domain(VmId("receiver"), CovertChannelReceiver.workload())
    hv.run_for(duration_ms)
    durations = [gap for _, gap in receiver.observed_gaps]
    decoded = decode_intervals(durations, sender.zero_ms, sender.one_ms)
    best_accuracy = 0.0
    for phase in range(len(BITS)):
        pattern = BITS[phase:] + BITS[:phase]
        sent = (pattern * (len(decoded) // len(pattern) + 1))[: len(decoded)]
        best_accuracy = max(best_accuracy, bit_accuracy(sent, decoded))
    return {
        "decoded_bits": len(decoded),
        "accuracy": best_accuracy,
        "bandwidth_bps": sender.bandwidth_bps,
    }


def test_fig4_high_rate_channel(benchmark):
    result = benchmark.pedantic(run_fast_channel, rounds=1, iterations=1)
    print(
        f"\nhigh-rate configuration: {result['bandwidth_bps']:.0f} bps nominal, "
        f"{result['decoded_bits']} bits decoded at {result['accuracy']:.1%} accuracy"
    )
    # the paper reports ~200 bps; the shape criterion is a channel in the
    # hundred-bps class that still decodes reliably
    assert result["bandwidth_bps"] > 100.0
    assert result["accuracy"] > 0.9


def test_fig4_covert_trace(benchmark):
    result = benchmark.pedantic(run_covert_channel, rounds=1, iterations=1)

    rows = [
        [f"{start:9.1f}", f"{duration:5.2f}",
         "1" if duration > (result["zero_ms"] + result["one_ms"]) / 2 else "0"]
        for start, duration in result["trace"][:20]
    ]
    print_table(
        "Fig. 4: sender CPU usage observed by the receiver (first 20 symbols)",
        ["gap start (ms)", "duration (ms)", "decoded bit"],
        rows,
    )
    print(
        f"decoded {result['decoded_bits']} bits, "
        f"accuracy {result['accuracy']:.1%}, "
        f"nominal bandwidth {result['bandwidth_bps']:.1f} bps"
    )

    # shape: two clearly separated symbol durations, decodable reliably
    assert result["decoded_bits"] >= 10 * len(BITS)
    assert result["accuracy"] > 0.9
    durations = [d for _, d in result["trace"]]
    shorts = [d for d in durations if d < 15.0]
    longs = [d for d in durations if d >= 15.0]
    assert shorts and longs, "both symbols must appear in the trace"
