"""Extension experiment — the memory-bus covert channel (§4.4.3).

"This is only one type of covert channel and other types of covert
channels can also be monitored (with more Trust Evidence Registers and
mechanisms)." This bench regenerates the analysis for the second
source: channel bandwidth/accuracy cross-core, the evasion of the
CPU-interval monitor, detection by the bus-lock monitor, and the
false-positive check on a benign memory-heavy service.
"""

from _tables import print_table

from repro.attacks import BusCovertChannelSender
from repro.attacks.covert_channel import bit_accuracy
from repro.common.identifiers import VmId
from repro.monitors import BusLatencyProbe, BusLockHistogram, RunIntervalHistogram
from repro.monitors.monitor_module import (
    MEAS_BUS_LOCK_HISTOGRAM,
    MEAS_CPU_INTERVAL_HISTOGRAM,
)
from repro.properties import CovertChannelInterpreter
from repro.xen import CpuBoundWorkload, Hypervisor, MemoryStreamingWorkload

BITS = [1, 0, 1, 1, 0, 0, 1, 0]


def run_channel() -> dict:
    hv = Hypervisor(num_pcpus=2)
    intervals = RunIntervalHistogram()
    bus = BusLockHistogram()
    hv.add_monitor(intervals)
    hv.add_monitor(bus)
    sender = BusCovertChannelSender(BITS, symbol_ms=10.0, high_rate=20.0)
    hv.create_domain(VmId("sender"), sender, pcpus=[1])
    hv.create_domain(VmId("receiver"), CpuBoundWorkload(), pcpus=[0])
    probe = BusLatencyProbe(hv, VmId("receiver"))
    probe.arm(4000.0)
    hv.run_for(6000.0)
    decoded = probe.decode(threshold_factor=1.3, symbol_ms=10.0)
    best = 0.0
    for phase in range(len(BITS)):
        pattern = BITS[phase:] + BITS[:phase]
        sent = (pattern * (len(decoded) // len(pattern) + 1))[: len(decoded)]
        best = max(best, bit_accuracy(sent, decoded))
    interpreter = CovertChannelInterpreter()
    cpu_verdict = interpreter.interpret(
        VmId("sender"),
        {MEAS_CPU_INTERVAL_HISTOGRAM: intervals.histogram(VmId("sender"))},
    )
    both_verdict = interpreter.interpret(
        VmId("sender"),
        {
            MEAS_CPU_INTERVAL_HISTOGRAM: intervals.histogram(VmId("sender")),
            MEAS_BUS_LOCK_HISTOGRAM: bus.histogram(VmId("sender")),
        },
    )
    return {
        "bandwidth_bps": sender.bandwidth_bps,
        "decoded_bits": len(decoded),
        "accuracy": best,
        "cpu_monitor_flags": not cpu_verdict.healthy,
        "bus_monitor_flags": not both_verdict.healthy,
    }


def run_benign() -> bool:
    """Whether the combined interpreter falsely flags a streaming app."""
    hv = Hypervisor(num_pcpus=2)
    intervals = RunIntervalHistogram()
    bus = BusLockHistogram()
    hv.add_monitor(intervals)
    hv.add_monitor(bus)
    hv.create_domain(VmId("app"), MemoryStreamingWorkload(lock_rate_per_ms=8.0),
                     pcpus=[1])
    hv.run_for(6000.0)
    verdict = CovertChannelInterpreter().interpret(
        VmId("app"),
        {
            MEAS_CPU_INTERVAL_HISTOGRAM: intervals.histogram(VmId("app")),
            MEAS_BUS_LOCK_HISTOGRAM: bus.histogram(VmId("app")),
        },
    )
    return not verdict.healthy


def run_all() -> dict:
    result = run_channel()
    result["benign_false_positive"] = run_benign()
    return result


def test_bus_covert_channel(benchmark):
    result = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print_table(
        "Extension: memory-bus covert channel",
        ["quantity", "value"],
        [
            ["nominal bandwidth", f"{result['bandwidth_bps']:.0f} bps"],
            ["bits decoded cross-core", result["decoded_bits"]],
            ["decode accuracy", f"{result['accuracy']:.1%}"],
            ["flagged by CPU-interval monitor",
             "yes" if result["cpu_monitor_flags"] else "no (evaded)"],
            ["flagged by bus-lock monitor",
             "yes" if result["bus_monitor_flags"] else "no"],
            ["benign streaming app false positive",
             "yes" if result["benign_false_positive"] else "no"],
        ],
    )

    assert result["bandwidth_bps"] >= 99.0
    assert result["accuracy"] > 0.9
    assert not result["cpu_monitor_flags"]  # invisible to the Fig. 5 monitor
    assert result["bus_monitor_flags"]      # caught by the second source
    assert not result["benign_false_positive"]
