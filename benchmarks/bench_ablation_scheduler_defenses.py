"""Ablation — scheduler defenses against the availability attack.

The boost-stealing attack of Fig. 6 exploits two scheduler behaviours:
sampled credit accounting (debit whoever is running at tick instants)
and wake-up preemption. This bench measures the victim's slowdown under
the attack for each defense configuration, isolating the root cause.

Shape: the baseline scheduler is starved >10x; disabling boost alone
does NOT help (the tick-evading attacker still out-prioritizes the
over-debited victim); precise per-interval accounting restores
fairness — the fix production schedulers adopted.
"""

from _tables import print_table

from repro.attacks import AvailabilityAttackWorkload, RfaPressureCampaign, RfaTargetWorkload
from repro.common.identifiers import VmId
from repro.common.rng import DeterministicRng
from repro.monitors import VmmProfileTool
from repro.xen import CpuBoundWorkload, FiniteCpuBoundWorkload, Hypervisor

VICTIM_MS = 800.0
CONFIGS = [
    ("baseline (Xen credit)", False, True),
    ("no boost", False, False),
    ("precise accounting", True, True),
    ("precise + no boost", True, False),
]


def attack_slowdown(precise: bool, boost: bool) -> float:
    hv = Hypervisor(num_pcpus=1, precise_accounting=precise, boost_enabled=boost)
    hv.create_domain(VmId("victim"), FiniteCpuBoundWorkload(VICTIM_MS))
    hv.create_domain(
        VmId("attacker"), AvailabilityAttackWorkload(), num_vcpus=2, pcpus=[0, 0]
    )
    finish = hv.run_until_domain_finishes(VmId("victim"), max_ms=60_000.0)
    return finish / VICTIM_MS


def rfa_beneficiary_share(precise: bool) -> float:
    """The RFA is scheduler-agnostic: defenses must NOT stop it (it
    modifies the victim's own workload, not the scheduler's books)."""
    hv = Hypervisor(num_pcpus=1, precise_accounting=precise)
    target = RfaTargetWorkload(DeterministicRng(3))
    hv.create_domain(VmId("victim"), target)
    hv.create_domain(VmId("beneficiary"), CpuBoundWorkload())
    RfaPressureCampaign(hv.engine, target).ramp(500.0, 1.0)
    tool = VmmProfileTool(hv)
    hv.run_for(1000.0)
    tool.start_window(VmId("beneficiary"))
    hv.run_for(4000.0)
    return tool.stop_window(VmId("beneficiary")).relative_usage


def run_all() -> dict:
    return {
        "attack": {
            label: attack_slowdown(precise, boost)
            for label, precise, boost in CONFIGS
        },
        "rfa_baseline": rfa_beneficiary_share(precise=False),
        "rfa_precise": rfa_beneficiary_share(precise=True),
    }


def test_scheduler_defense_ablation(benchmark):
    result = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print_table(
        "Ablation: scheduler defenses vs the boost-stealing attack",
        ["configuration", "victim slowdown"],
        [[label, f"{result['attack'][label]:.1f}x"] for label, _, _ in CONFIGS],
    )
    print_table(
        "RFA beneficiary CPU share (scheduler-agnostic attack)",
        ["scheduler", "beneficiary share"],
        [["baseline", f"{result['rfa_baseline']:.0%}"],
         ["precise accounting", f"{result['rfa_precise']:.0%}"]],
    )

    attack = result["attack"]
    assert attack["baseline (Xen credit)"] > 10.0
    # removing boost alone does not fix the root cause
    assert attack["no boost"] > 5.0
    # exact accounting does
    assert attack["precise accounting"] < 3.0
    assert attack["precise + no boost"] < 3.0
    # the RFA bypasses scheduler defenses entirely — monitoring (the
    # availability property) remains the only detection point
    assert result["rfa_baseline"] > 0.8
    assert result["rfa_precise"] > 0.8
