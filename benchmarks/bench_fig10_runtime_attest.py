"""Fig. 10 — Performance effect of runtime attestation.

One ubuntu-large VM runs each cloud benchmark while the customer
requests periodic CPU-availability attestation at no / 1 min / 10 s /
5 s frequency. The metric is relative performance: work completed (CPU
time accumulated by the benchmark) with attestation, normalized to the
no-attestation baseline over the same wall time.

Paper shape: "there is no performance degradation due to the execution
of runtime attestation" — the measurements are taken at VM switch time
and never intercept the VM, so every bar stays ≈ 100%.

Profiles: the full profile (default) regenerates the paper table for
``bench_tables.txt``; ``BENCH_PROFILE=fast`` runs two benchmarks over a
shorter window for CI smoke (same assertions, ~10x less work).
"""

import os

from _tables import print_table

from repro import CloudMonatt, SecurityProperty

FAST = os.environ.get("BENCH_PROFILE", "").lower() == "fast"
BENCHMARKS = (
    ["database", "web"]
    if FAST
    else ["database", "file", "web", "app", "stream", "mail"]
)
FREQUENCIES = {"no attest": None, "1min": 60_000.0, "10s": 10_000.0, "5s": 5_000.0}
MEASURE_WINDOW_MS = 60_000.0 if FAST else 180_000.0


def run_cell(benchmark_name: str, frequency_ms) -> float:
    """Work (CPU ms) the benchmark completes in the window."""
    cloud = CloudMonatt(num_servers=1, seed=31)
    customer = cloud.register_customer("alice")
    vm = customer.launch_vm(
        "large",
        "ubuntu",
        properties=[SecurityProperty.CPU_AVAILABILITY],
        workload={"name": benchmark_name},
    )
    if frequency_ms is not None:
        customer.start_periodic_attestation(
            vm.vid, SecurityProperty.CPU_AVAILABILITY, frequency_ms=frequency_ms
        )
    server = cloud.server_of(vm.vid)
    domain = server.hypervisor.domains[vm.vid]
    start_cpu = sum(v.runtime_until(cloud.now) for v in domain.vcpus)
    start_time = cloud.now
    cloud.run_for(MEASURE_WINDOW_MS)
    end_cpu = sum(v.runtime_until(cloud.now) for v in domain.vcpus)
    elapsed = cloud.now - start_time
    return (end_cpu - start_cpu) / elapsed  # normalized work rate


def run_matrix() -> dict[str, dict[str, float]]:
    results: dict[str, dict[str, float]] = {}
    for name in BENCHMARKS:
        baseline = run_cell(name, None)
        results[name] = {"no attest": 1.0}
        for label, frequency in FREQUENCIES.items():
            if frequency is None:
                continue
            results[name][label] = run_cell(name, frequency) / baseline
    return results


def test_fig10_runtime_attestation_overhead(benchmark):
    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    rows = [
        [name] + [f"{results[name][label]:.1%}" for label in FREQUENCIES]
        for name in BENCHMARKS
    ]
    print_table(
        "Fig. 10: relative performance under periodic runtime attestation",
        ["benchmark"] + list(FREQUENCIES),
        rows,
    )

    for name in BENCHMARKS:
        for label in FREQUENCIES:
            relative = results[name][label]
            # no performance degradation beyond measurement noise
            assert relative > 0.95, (name, label, relative)
