"""The continuous attestation scheduler, end to end.

The promises pinned here, in order: scheduler-driven rounds are
byte-identical to the on-demand rounds a customer would have requested
(the scheduler is a cadence layer, not a different attestation path);
same seed + same policy produces an identical alarm-transition timeline
and telemetry snapshot across two runs; a v1→v2 policy migration keeps
alarm state and misses no check firings; a flapping VM never pages; an
unreachable attestation path ages coverage until the staleness alert
fires instead of silently extending a clean bill of health.
"""

from __future__ import annotations

import pytest

from repro import CloudMonatt, SecurityProperty
from repro.common.errors import PolicyError, ProtocolError
from repro.crypto.encoding import encode
from repro.guest import HiddenServiceMalware, Rootkit
from repro.network import TamperAttacker

KEY_BITS = 512
SEED = 1123
RUNTIME = SecurityProperty.RUNTIME_INTEGRITY


def _build_cloud(num_vms: int, properties=(RUNTIME,), telemetry_enabled=False,
                 num_servers: int = 2, **cloud_kwargs):
    cloud = CloudMonatt(
        num_servers=num_servers,
        num_pcpus=(num_vms // num_servers) + 2,
        seed=SEED,
        key_bits=KEY_BITS,
        telemetry_enabled=telemetry_enabled,
        **cloud_kwargs,
    )
    customer = cloud.register_customer("alice")
    vids = [
        customer.launch_vm(
            "small", "ubuntu", properties=list(properties),
            workload={"name": "idle"},
        ).vid
        for _ in range(num_vms)
    ]
    return cloud, customer, vids


def _policy(vids, name="prod", version=1, checks=None, notifications=None):
    document = {
        "name": name,
        "version": version,
        "entities": [str(v) for v in vids],
        "checks": checks or [{
            "name": "runtime",
            "property": "runtime_integrity",
            "period_ms": 2000.0,
            "staleness_budget_ms": 6000.0,
        }],
    }
    if notifications is not None:
        document["notifications"] = notifications
    return document


def _spy_on_submits(cloud, log):
    """Record every pipeline submission as (time_ms, vid, prop, source)."""
    original = cloud.controller.pipeline.submit

    def spy(vid, prop, window_ms=None, source="api"):
        future = original(vid, prop, window_ms=window_ms, source=source)
        record = {"time_ms": cloud.engine.now, "vid": str(vid),
                  "property": prop.value, "source": source}
        log.append(record)
        future.add_done_callback(lambda f: record.update(future=f))
        return future

    cloud.controller.pipeline.submit = spy


def _entry(status, check, vid):
    (match,) = [e for e in status["entries"]
                if e["check"] == check and e["vid"] == str(vid)]
    return match


# ----------------------------------------------------------------------
# registration, validation at the API boundary, ownership
# ----------------------------------------------------------------------


class TestRegistration:
    def test_register_creates_one_entry_per_check_and_vm(self):
        cloud, customer, vids = _build_cloud(3)
        applied = customer.register_policy(_policy(vids))
        assert applied["status"] == "policy_applied"
        assert applied["created"] == 3
        assert applied["migrated"] == 0
        status = customer.policy_status()
        assert status["policies"]["prod"]["version"] == 1
        assert len(status["entries"]) == 3
        assert all(e["state"] == "OK" for e in status["entries"])

    def test_malformed_policy_fails_fast_with_policy_error(self):
        # satellite: unknown property and non-positive period die with a
        # clear PolicyError at registration, never mid-run
        cloud, customer, vids = _build_cloud(1)
        bad_prop = _policy(vids)
        bad_prop["checks"][0]["property"] = "disk_quota"
        with pytest.raises(PolicyError, match="unknown property"):
            customer.register_policy(bad_prop)
        bad_period = _policy(vids)
        bad_period["checks"][0]["period_ms"] = 0
        with pytest.raises(PolicyError, match="period_ms must be positive"):
            customer.register_policy(bad_period)
        # nothing was scheduled; the cloud keeps running cleanly
        cloud.run_for(2000)
        assert customer.policy_status()["entries"] == []

    def test_policy_over_someone_elses_vm_is_rejected(self):
        cloud, customer, vids = _build_cloud(1)
        mallory = cloud.register_customer("mallory")
        with pytest.raises(ProtocolError, match="does not belong"):
            mallory.register_policy(_policy(vids))
        assert mallory.policy_status()["entries"] == []

    def test_policy_status_is_scoped_to_the_caller(self):
        cloud, customer, vids = _build_cloud(1)
        customer.register_policy(_policy(vids))
        bob = cloud.register_customer("bob")
        assert bob.policy_status()["policies"] == {}
        assert customer.policy_status()["policies"].keys() == {"prod"}


# ----------------------------------------------------------------------
# continuous rounds over a healthy fleet
# ----------------------------------------------------------------------


class TestContinuousRounds:
    def test_healthy_fleet_keeps_firing_and_stays_ok(self):
        cloud, customer, vids = _build_cloud(3, telemetry_enabled=True)
        customer.register_policy(_policy(vids))
        cloud.run_for(10_000)
        status = customer.policy_status()
        for entry in status["entries"]:
            assert entry["fired"] >= 4
            assert entry["state"] == "OK"
            assert not entry["stale"]
        assert status["transitions"] == []
        # the counter and the live entries agree exactly (the status
        # round-trip itself advances sim time, so compare live state)
        fired = cloud.telemetry.metrics.counter("policy.checks.fired")
        entries = cloud.controller.policy_scheduler._entries.values()
        assert fired.total() == sum(e.fired for e in entries)

    def test_policy_rounds_are_labelled_in_pipeline_telemetry(self):
        cloud, customer, vids = _build_cloud(2, telemetry_enabled=True)
        customer.register_policy(_policy(vids))
        cloud.run_for(3000)
        rounds = cloud.telemetry.metrics.counter("pipeline.rounds")
        policy_rounds = sum(
            count for labels, count in rounds.series()
            if ("source", "policy") in labels
        )
        assert policy_rounds >= 2

    def test_phase_jitter_spreads_same_period_checks(self):
        # content-addressed phases: not every VM fires at the same
        # instant, and re-registering in any order gives the same phases
        cloud, customer, vids = _build_cloud(4)
        submissions = []
        _spy_on_submits(cloud, submissions)
        customer.register_policy(_policy(vids))
        cloud.run_for(2500)
        first = {s["vid"]: s["time_ms"] for s in submissions}
        assert len(first) == 4
        assert len(set(first.values())) > 1, "all phases collided"


# ----------------------------------------------------------------------
# determinism and equivalence (the acceptance criteria)
# ----------------------------------------------------------------------


def _run_monitored_cloud(duration_ms=20_000):
    cloud, customer, vids = _build_cloud(3, telemetry_enabled=True)
    customer.register_policy(_policy(vids, checks=[{
        "name": "runtime", "property": "runtime_integrity",
        "period_ms": 2000.0, "staleness_budget_ms": 6000.0,
        "warning_after": 2, "critical_after": 4, "clear_after": 2,
    }]))
    victim = vids[1]
    cloud.engine.schedule(
        5000,
        lambda: Rootkit().infect(cloud.server_of(victim).hosted[victim].guest),
    )
    cloud.run_for(duration_ms)
    return cloud, customer, vids


class TestDeterminism:
    def test_same_seed_same_policy_identical_timeline_and_telemetry(self):
        cloud_a, _, _ = _run_monitored_cloud()
        cloud_b, _, _ = _run_monitored_cloud()
        timeline_a = cloud_a.controller.policy_scheduler.timeline()
        timeline_b = cloud_b.controller.policy_scheduler.timeline()
        assert timeline_a, "expected alarm transitions from the rootkit"
        assert timeline_a == timeline_b
        assert cloud_a.telemetry.snapshot_json() == \
            cloud_b.telemetry.snapshot_json()

    def test_infection_produces_the_documented_escalation(self):
        cloud, customer, vids = _run_monitored_cloud()
        victim = str(vids[1])
        states = [(t["old_state"], t["new_state"])
                  for t in cloud.controller.policy_scheduler.timeline()
                  if t["vid"] == victim]
        assert states == [("OK", "WARNING"), ("WARNING", "CRITICAL")]
        clean = {str(vids[0]), str(vids[2])}
        assert all(t["vid"] == victim
                   for t in cloud.controller.policy_scheduler.timeline()
                   if t["vid"] in clean | {victim})


class TestSchedulerMatchesOnDemand:
    def test_policy_rounds_byte_identical_to_serial_attest(self):
        # the scheduler decides *when*; the report bytes must be exactly
        # what an on-demand attest of the same VM would have produced
        cloud, customer, vids = _build_cloud(3)
        submissions = []
        _spy_on_submits(cloud, submissions)
        customer.register_policy(_policy(vids))
        cloud.run_for(4000)
        by_vid = {}
        for record in submissions:
            assert record["source"] == "policy"
            outcome = record["future"].result()
            by_vid.setdefault(record["vid"], outcome)
        assert by_vid.keys() == {str(v) for v in vids}

        _, serial_customer, serial_vids = _build_cloud(3)
        assert serial_vids == vids
        for vid in vids:
            serial = serial_customer.attest(vid, RUNTIME)
            assert encode(by_vid[str(vid)].report.to_dict()) == \
                encode(serial.report.to_dict())


# ----------------------------------------------------------------------
# versioned migration
# ----------------------------------------------------------------------


V1_CHECKS = [{
    "name": "runtime", "property": "runtime_integrity",
    "period_ms": 2000.0, "staleness_budget_ms": 6000.0,
    "warning_after": 2, "critical_after": 10, "clear_after": 2,
}]
V2_CHECKS = [
    {
        "name": "runtime", "property": "runtime_integrity",
        "period_ms": 2000.0, "staleness_budget_ms": 6000.0,
        "warning_after": 2, "critical_after": 12, "clear_after": 3,
    },
    # one availability round costs ~1s of simulated protocol time, so
    # the added check must stay well under the path's capacity or the
    # scheduler (correctly) starts shedding
    {
        "name": "availability", "property": "cpu_availability",
        "period_ms": 8000.0, "staleness_budget_ms": 24_000.0,
        "window_ms": 200.0,
    },
]


class TestVersionMigration:
    def _migrated_cloud(self):
        cloud, customer, vids = _build_cloud(
            2, properties=(RUNTIME, SecurityProperty.CPU_AVAILABILITY))
        submissions = []
        _spy_on_submits(cloud, submissions)
        customer.register_policy(_policy(vids, checks=V1_CHECKS))
        Rootkit().infect(cloud.server_of(vids[0]).hosted[vids[0]].guest)
        cloud.run_for(7000)
        before = customer.policy_status()
        applied = customer.register_policy(
            _policy(vids, version=2, checks=V2_CHECKS))
        return cloud, customer, vids, submissions, before, applied

    def test_migration_keeps_alarm_state_and_streaks(self):
        cloud, customer, vids, _, before, applied = self._migrated_cloud()
        assert applied == {"status": "policy_applied", "policy": "prod",
                           "version": 2, "created": 2, "migrated": 2}
        after = customer.policy_status()
        old = _entry(before, "runtime", vids[0])
        new = _entry(after, "runtime", vids[0])
        assert old["state"] == "WARNING"
        assert new["state"] == "WARNING"
        assert new["failure_streak"] == old["failure_streak"]
        assert new["fired"] == old["fired"]
        # the new version's thresholds are live on the surviving entry
        assert after["policies"]["prod"]["version"] == 2
        assert {e["check"] for e in after["entries"]} == \
            {"runtime", "availability"}

    def test_migration_misses_no_firings(self):
        cloud, customer, vids, submissions, before, _ = self._migrated_cloud()
        migration_ms = cloud.now
        cloud.run_for(7000)
        after = customer.policy_status()
        for vid in vids:
            assert _entry(after, "runtime", vid)["fired"] >= \
                _entry(before, "runtime", vid)["fired"] + 2
        # the kept check's cadence never opened a gap across the
        # migration: consecutive runtime rounds always stay under two
        # periods (a dropped entry or a reset phase would show a full
        # extra period or more), even though the newly added
        # availability batch wobbles the tick it shares by ~1.5s
        for vid in vids:
            times = [s["time_ms"] for s in submissions
                     if s["vid"] == str(vid) and
                     s["property"] == "runtime_integrity"]
            gaps = [b - a for a, b in zip(times, times[1:])]
            assert max(gaps) < 2 * 2000.0
            assert any(t > migration_ms for t in times)

    def test_stale_or_equal_version_is_rejected(self):
        cloud, customer, vids = _build_cloud(1)
        customer.register_policy(_policy(vids, version=3))
        for version in (1, 3):
            with pytest.raises(PolicyError, match="does not supersede"):
                customer.register_policy(_policy(vids, version=version))

    def test_removed_check_is_retired(self):
        cloud, customer, vids, *_ = self._migrated_cloud()
        customer.register_policy(_policy(vids, version=3, checks=V1_CHECKS))
        after = customer.policy_status()
        assert {e["check"] for e in after["entries"]} == {"runtime"}
        cloud.run_for(3000)  # retired entries never fire again


# ----------------------------------------------------------------------
# flapping: hysteresis prevents alert storms (satellite)
# ----------------------------------------------------------------------


class TestFlappingVm:
    def _flapping_cloud(self, toggle_ms=1500.0, duration_ms=15_000):
        cloud, customer, vids = _build_cloud(1, telemetry_enabled=True)
        customer.register_policy(_policy(vids, checks=[{
            "name": "runtime", "property": "runtime_integrity",
            "period_ms": 1000.0, "staleness_budget_ms": 5000.0,
            "warning_after": 3, "critical_after": 5, "clear_after": 2,
        }]))
        guest = cloud.server_of(vids[0]).hosted[vids[0]].guest
        running = {}

        def toggle():
            if running:
                guest.kill(running.pop("process").pid)
            else:
                running["process"] = HiddenServiceMalware().infect(guest)

        ticks = int(duration_ms / toggle_ms) - 1
        for i in range(ticks):
            cloud.engine.schedule(toggle_ms * (i + 1), toggle)
        cloud.run_for(duration_ms)
        return cloud, customer, vids

    def test_flapping_vm_never_pages(self):
        # the malware toggles every 1.5 periods: at most two consecutive
        # unhealthy samples, below warning_after=3 — the alarm must hold
        # OK through the whole seeded flap storm
        cloud, customer, vids = self._flapping_cloud()
        status = customer.policy_status()
        (entry,) = status["entries"]
        assert entry["fired"] >= 10, "scheduler stopped sampling"
        assert entry["state"] == "OK"
        assert status["transitions"] == []
        alarms = [a for a in cloud.observatory.alert_records()
                  if a["rule"] == "policy_alarm_critical"]
        assert alarms == []

    def test_sustained_infection_pages_exactly_once(self):
        cloud, customer, vids = _build_cloud(1, telemetry_enabled=True)
        customer.register_policy(_policy(vids, checks=[{
            "name": "runtime", "property": "runtime_integrity",
            "period_ms": 1000.0, "staleness_budget_ms": 5000.0,
            "warning_after": 2, "critical_after": 4, "clear_after": 2,
        }]))
        guest = cloud.server_of(vids[0]).hosted[vids[0]].guest
        HiddenServiceMalware().infect(guest)
        cloud.run_for(12_000)
        states = [(t["old_state"], t["new_state"])
                  for t in customer.policy_status()["transitions"]]
        assert states == [("OK", "WARNING"), ("WARNING", "CRITICAL")]
        alarms = [a for a in cloud.observatory.alert_records()
                  if a["rule"] == "policy_alarm_critical"]
        assert len(alarms) == 1, "CRITICAL must page once, not every round"


# ----------------------------------------------------------------------
# staleness: unreachable rounds age coverage (never extend health)
# ----------------------------------------------------------------------


class TestStalenessAndRecovery:
    def test_unreachable_path_blows_the_staleness_budget(self):
        cloud, customer, vids = _build_cloud(1, telemetry_enabled=True,
                                             num_servers=1)
        customer.register_policy(_policy(vids, checks=[{
            "name": "runtime", "property": "runtime_integrity",
            "period_ms": 1000.0, "staleness_budget_ms": 3000.0,
        }]))
        cloud.run_for(2500)  # a few healthy rounds first
        cloud.network.install_attacker(TamperAttacker(direction="response"))
        cloud.run_for(12_000)
        scheduler = cloud.controller.policy_scheduler
        (entry,) = [e.to_dict() for e in scheduler._entries.values()]
        assert entry["stale"]
        # UNREACHABLE is not a verdict on the VM: no alarm transition
        assert entry["state"] == "OK"
        assert scheduler.timeline() == []
        stale = cloud.telemetry.metrics.counter("policy.checks.stale")
        assert stale.total() >= 1
        coverage_alerts = [a for a in cloud.observatory.alert_records()
                           if a["rule"] == "policy_coverage_blown"]
        assert len(coverage_alerts) == 1
        snapshot = cloud.observatory.health_snapshot()
        assert snapshot["vms"][str(vids[0])]["coverage"] == "0/1"

    def test_coverage_restores_after_the_breaker_resets(self):
        cloud, customer, vids = _build_cloud(1, telemetry_enabled=True,
                                             num_servers=1)
        customer.register_policy(_policy(vids, checks=[{
            "name": "runtime", "property": "runtime_integrity",
            "period_ms": 1000.0, "staleness_budget_ms": 3000.0,
        }]))
        cloud.run_for(2500)
        cloud.network.install_attacker(TamperAttacker(direction="response"))
        cloud.run_for(10_000)
        cloud.network.install_attacker(None)
        cloud.run_for(70_000)  # past the breaker's reset window
        status = customer.policy_status()
        (entry,) = status["entries"]
        assert not entry["stale"]
        assert entry["state"] == "OK"
        snapshot = cloud.observatory.health_snapshot()
        assert snapshot["vms"][str(vids[0])]["coverage"] == "1/1"


# ----------------------------------------------------------------------
# load shedding and lifecycle
# ----------------------------------------------------------------------


class TestLoadShedding:
    def test_over_budget_checks_are_shed_but_everyone_gets_served(self):
        cloud, customer, vids = _build_cloud(4, telemetry_enabled=True)
        cloud.controller.policy_scheduler.rounds_per_tick = 1
        customer.register_policy(_policy(vids, checks=[{
            "name": "runtime", "property": "runtime_integrity",
            "period_ms": 1000.0, "staleness_budget_ms": 20_000.0,
        }]))
        cloud.run_for(10_000)
        status = customer.policy_status()
        shed = cloud.telemetry.metrics.counter("policy.checks.shed")
        assert shed.total() > 0
        # oldest-coverage-first: nobody starves under the budget
        assert all(e["fired"] >= 2 for e in status["entries"])


class TestVmLifecycle:
    def test_terminated_vm_entries_are_retired(self):
        cloud, customer, vids = _build_cloud(2)
        customer.register_policy(_policy(vids, checks=[{
            "name": "runtime", "property": "runtime_integrity",
            "period_ms": 1000.0, "staleness_budget_ms": 4000.0,
        }]))
        cloud.run_for(3000)
        customer.terminate_vm(vids[0])
        cloud.run_for(5000)
        status = customer.policy_status()
        survivors = {e["vid"] for e in status["entries"]}
        assert survivors == {str(vids[1])}
        # the surviving VM's coverage never suffered for its neighbour
        (entry,) = status["entries"]
        assert not entry["stale"]
        assert entry["state"] == "OK"
