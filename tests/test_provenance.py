"""Tests for VM lifecycle provenance (the controller's audit trail)."""

import pytest

from repro import CloudMonatt, SecurityProperty
from repro.controller.response import ResponseAction
from repro.lifecycle.flavors import VmImage


@pytest.fixture()
def cloud():
    return CloudMonatt(num_servers=2, num_pcpus=1, seed=73)


class TestProvenance:
    def test_launch_leaves_a_trail(self, cloud):
        alice = cloud.register_customer("alice")
        vm = alice.launch_vm(
            "small", "cirros", properties=[SecurityProperty.STARTUP_INTEGRITY]
        )
        events = [r.event for r in cloud.controller.vm_provenance(vm.vid)]
        assert events == ["scheduled", "launched"]
        assert cloud.controller.provenance.verify() == []

    def test_rejected_launch_recorded_with_reason(self, cloud):
        cloud.controller.images["evil"] = VmImage(
            name="evil", size_mb=25, content=b"trojaned"
        )
        cloud.attestation_server.interpreter.trust_image(
            VmImage(name="evil", size_mb=25, content=b"pristine")
        )
        alice = cloud.register_customer("alice")
        result = alice.launch_vm(
            "small", "evil", properties=[SecurityProperty.STARTUP_INTEGRITY]
        )
        assert not result.accepted
        trail = cloud.controller.vm_provenance(result.vid)
        events = [r.event for r in trail]
        assert events == ["scheduled", "launched", "terminated", "rejected"]
        rejected = trail[-1]
        assert "does not match" in rejected.payload["reason"]

    def test_full_lifecycle_trail(self, cloud):
        cloud.controller.response.set_policy(
            SecurityProperty.CPU_AVAILABILITY, ResponseAction.MIGRATE
        )
        alice = cloud.register_customer("alice")
        victim = alice.launch_vm(
            "small", "ubuntu",
            properties=[SecurityProperty.CPU_AVAILABILITY,
                        SecurityProperty.STARTUP_INTEGRITY],
            workload={"name": "cpu_bound"}, pins=[0],
        )
        source = cloud.controller.database.vm(victim.vid).server
        alice.launch_vm(
            "medium", "ubuntu", workload={"name": "cpu_availability_attack"},
            pins=[0, 0], force_server=str(source),
        )
        alice.attest(victim.vid, SecurityProperty.CPU_AVAILABILITY)
        alice.terminate_vm(victim.vid)
        events = [r.event for r in cloud.controller.vm_provenance(victim.vid)]
        assert events == ["scheduled", "launched", "migrated", "terminated"]
        migrated = cloud.controller.vm_provenance(victim.vid)[2]
        assert migrated.payload["source"] == str(source)
        assert migrated.payload["destination"] != str(source)

    def test_suspend_resume_trail(self, cloud):
        cloud.controller.response.set_policy(
            SecurityProperty.CPU_AVAILABILITY, ResponseAction.SUSPEND
        )
        alice = cloud.register_customer("alice")
        victim = alice.launch_vm(
            "small", "ubuntu",
            properties=[SecurityProperty.CPU_AVAILABILITY,
                        SecurityProperty.STARTUP_INTEGRITY],
            workload={"name": "cpu_bound"}, pins=[0],
        )
        source = cloud.controller.database.vm(victim.vid).server
        alice.launch_vm(
            "medium", "ubuntu", workload={"name": "cpu_availability_attack"},
            pins=[0, 0], force_server=str(source),
        )
        alice.attest(victim.vid, SecurityProperty.CPU_AVAILABILITY)
        alice.resume_vm(victim.vid)
        events = [r.event for r in cloud.controller.vm_provenance(victim.vid)]
        assert events == ["scheduled", "launched", "suspended", "resumed"]

    def test_provenance_chain_is_tamper_evident(self, cloud):
        alice = cloud.register_customer("alice")
        alice.launch_vm("small", "cirros")
        alice.launch_vm("small", "fedora")
        log = cloud.controller.provenance
        assert log.verify() == []
        log._tamper_delete(0)
        assert log.verify() != []

    def test_trails_are_per_vm(self, cloud):
        alice = cloud.register_customer("alice")
        a = alice.launch_vm("small", "cirros")
        b = alice.launch_vm("small", "fedora")
        assert all(
            r.payload["vid"] == str(a.vid)
            for r in cloud.controller.vm_provenance(a.vid)
        )
        assert len(cloud.controller.vm_provenance(b.vid)) == 2
