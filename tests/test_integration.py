"""End-to-end integration tests: the full CloudMonatt stack.

Each test drives the public API the way a customer would — launch,
attest, receive remediation — against real attacks running in the
simulated cloud.
"""

import pytest

from repro import CloudMonatt, SecurityProperty
from repro.attacks.image_tampering import tamper_platform
from repro.common.errors import PlacementError, ProtocolError
from repro.controller.response import ResponseAction
from repro.guest import Rootkit
from repro.lifecycle.flavors import VmImage
from repro.lifecycle.states import VmState
from repro.monitors.integrity_unit import SoftwareInventory
from repro.network import Eavesdropper


@pytest.fixture()
def cloud():
    return CloudMonatt(num_servers=3, seed=42)


@pytest.fixture()
def alice(cloud):
    return cloud.register_customer("alice")


class TestLaunch:
    def test_healthy_launch_accepted(self, cloud, alice):
        result = alice.launch_vm(
            "small", "cirros", properties=[SecurityProperty.STARTUP_INTEGRITY]
        )
        assert result.accepted
        assert result.report.healthy
        assert set(result.stage_times_ms) == {
            "scheduling", "networking", "block_device_mapping",
            "spawning", "attestation",
        }

    def test_launch_without_properties_skips_attestation(self, cloud, alice):
        result = alice.launch_vm("small", "cirros")
        assert result.accepted
        assert result.report is None
        assert "attestation" not in result.stage_times_ms

    def test_attestation_overhead_fraction(self, cloud, alice):
        """Paper §7.1.1: attestation ≈ 20% of launch time."""
        result = alice.launch_vm(
            "medium", "fedora", properties=[SecurityProperty.STARTUP_INTEGRITY]
        )
        fraction = result.stage_times_ms["attestation"] / result.total_ms
        assert 0.10 <= fraction <= 0.35

    def test_tampered_image_rejected_at_launch(self, cloud, alice):
        cloud.controller.images["evil"] = VmImage(
            name="evil", size_mb=25, content=b"trojaned image"
        )
        # the AS trusts an image named "evil" but with different content
        cloud.attestation_server.interpreter.trust_image(
            VmImage(name="evil", size_mb=25, content=b"the pristine version")
        )
        result = alice.launch_vm(
            "small", "evil", properties=[SecurityProperty.STARTUP_INTEGRITY]
        )
        assert not result.accepted
        assert not result.report.healthy
        record = cloud.controller.database.vm(result.vid)
        assert record.state is VmState.REJECTED

    def test_tampered_platform_rejected(self, cloud, alice):
        """A server with a backdoored hypervisor fails startup attestation.

        §5.1 behaviour: the controller retries on another qualified
        server; with no other server in the fleet, placement fails.
        """
        small_cloud = CloudMonatt(num_servers=1, seed=7)
        bad_inventory = tamper_platform(SoftwareInventory.pristine_platform())
        # replace the fleet with a single tampered server
        small_cloud.servers.clear()
        small_cloud.controller.database._servers.clear()
        small_cloud.add_server(platform_inventory=bad_inventory, trust_platform=False)
        customer = small_cloud.register_customer("bob")
        with pytest.raises(PlacementError):
            customer.launch_vm(
                "small", "cirros", properties=[SecurityProperty.STARTUP_INTEGRITY]
            )
        events = [r.event for r in small_cloud.controller.provenance]
        assert "platform_failed_retrying" in events

    def test_insecure_servers_filtered_for_monitored_vms(self):
        cloud = CloudMonatt(num_servers=2, seed=3, insecure_servers=2)
        customer = cloud.register_customer("carol")
        # no security properties: an insecure server is acceptable
        plain = customer.launch_vm("small", "cirros")
        assert plain.accepted
        # with properties: no server qualifies (the property filter
        # excludes the whole insecure fleet)
        with pytest.raises(PlacementError):
            customer.launch_vm(
                "small", "cirros", properties=[SecurityProperty.STARTUP_INTEGRITY]
            )

    def test_placement_balances_load(self, cloud, alice):
        placements = {
            alice.launch_vm("small", "cirros").vid: None for _ in range(3)
        }
        servers = {
            cloud.controller.database.vm(vid).server for vid in placements
        }
        assert len(servers) == 3  # spread across the whole fleet


class TestRuntimeIntegrityEndToEnd:
    def test_rootkit_detected(self, cloud, alice):
        vm = alice.launch_vm(
            "small", "ubuntu", properties=[SecurityProperty.RUNTIME_INTEGRITY,
                                           SecurityProperty.STARTUP_INTEGRITY]
        )
        healthy = alice.attest(vm.vid, SecurityProperty.RUNTIME_INTEGRITY)
        assert healthy.report.healthy
        # infect the guest in place
        server = cloud.server_of(vm.vid)
        Rootkit().infect(server.hosted[vm.vid].guest)
        infected = alice.attest(vm.vid, SecurityProperty.RUNTIME_INTEGRITY)
        assert not infected.report.healthy
        assert "cryptominer" in infected.report.details["unknown_tasks"]


class TestCovertChannelEndToEnd:
    def test_covert_sender_detected(self):
        cloud = CloudMonatt(num_servers=1, num_pcpus=1, seed=11)
        customer = cloud.register_customer("alice")
        sender = customer.launch_vm(
            "small", "ubuntu",
            properties=[SecurityProperty.COVERT_CHANNEL_FREEDOM,
                        SecurityProperty.STARTUP_INTEGRITY],
            workload={"name": "covert_channel_sender"},
            pins=[0],
        )
        customer.launch_vm(
            "small", "ubuntu", workload={"name": "cpu_bound"}, pins=[0]
        )
        result = customer.attest(
            sender.vid, SecurityProperty.COVERT_CHANNEL_FREEDOM
        )
        assert not result.report.healthy
        assert len(result.report.details["peaks"]) >= 2

    def test_benign_vm_not_flagged(self):
        cloud = CloudMonatt(num_servers=1, num_pcpus=1, seed=11)
        customer = cloud.register_customer("alice")
        benign = customer.launch_vm(
            "small", "ubuntu",
            properties=[SecurityProperty.COVERT_CHANNEL_FREEDOM],
            workload={"name": "cpu_bound"},
            pins=[0],
        )
        customer.launch_vm(
            "small", "ubuntu", workload={"name": "cpu_bound"}, pins=[0]
        )
        result = customer.attest(
            benign.vid, SecurityProperty.COVERT_CHANNEL_FREEDOM
        )
        assert result.report.healthy


class TestAvailabilityEndToEnd:
    def _cloud_with_victim_and(self, attacker_workload):
        cloud = CloudMonatt(num_servers=1, num_pcpus=1, seed=13)
        customer = cloud.register_customer("alice")
        victim = customer.launch_vm(
            "small", "ubuntu",
            properties=[SecurityProperty.CPU_AVAILABILITY],
            workload={"name": "cpu_bound"},
            pins=[0],
        )
        if attacker_workload:
            customer.launch_vm(
                "medium", "ubuntu", workload={"name": attacker_workload},
                pins=[0, 0],
            )
        return cloud, customer, victim

    def test_attack_compromises_availability(self):
        _, customer, victim = self._cloud_with_victim_and(
            "cpu_availability_attack"
        )
        result = customer.attest(victim.vid, SecurityProperty.CPU_AVAILABILITY)
        assert not result.report.healthy
        assert result.report.details["relative_usage"] < 0.15

    def test_fair_corunner_is_healthy(self):
        _, customer, victim = self._cloud_with_victim_and("database")
        result = customer.attest(victim.vid, SecurityProperty.CPU_AVAILABILITY)
        assert result.report.healthy
        assert result.report.details["relative_usage"] == pytest.approx(0.5, abs=0.1)


class TestResponses:
    def _attacked_cloud(self, policy):
        cloud = CloudMonatt(num_servers=2, num_pcpus=1, seed=17)
        cloud.controller.response.set_policy(
            SecurityProperty.CPU_AVAILABILITY, policy
        )
        customer = cloud.register_customer("alice")
        victim = customer.launch_vm(
            "small", "ubuntu",
            properties=[SecurityProperty.CPU_AVAILABILITY],
            workload={"name": "cpu_bound"},
            pins=[0],
        )
        # co-locate the attacker explicitly on the victim's server
        victim_server = cloud.controller.database.vm(victim.vid).server
        customer.launch_vm(
            "medium", "ubuntu",
            workload={"name": "cpu_availability_attack"}, pins=[0, 0],
            force_server=str(victim_server),
        )
        return cloud, customer, victim

    def test_termination_response(self):
        cloud, customer, victim = self._attacked_cloud(ResponseAction.TERMINATE)
        result = customer.attest(victim.vid, SecurityProperty.CPU_AVAILABILITY)
        assert not result.report.healthy
        assert result.response["action"] == "terminate"
        assert cloud.controller.database.vm(victim.vid).state is VmState.TERMINATED

    def test_suspension_and_resume(self):
        cloud, customer, victim = self._attacked_cloud(ResponseAction.SUSPEND)
        result = customer.attest(victim.vid, SecurityProperty.CPU_AVAILABILITY)
        assert result.response["action"] == "suspend"
        assert cloud.controller.database.vm(victim.vid).state is VmState.SUSPENDED
        customer.resume_vm(victim.vid)
        assert cloud.controller.database.vm(victim.vid).state is VmState.ACTIVE

    def test_migration_response_moves_vm(self):
        cloud, customer, victim = self._attacked_cloud(ResponseAction.MIGRATE)
        before = cloud.controller.database.vm(victim.vid).server
        result = customer.attest(victim.vid, SecurityProperty.CPU_AVAILABILITY)
        assert result.response["action"] == "migrate"
        after = cloud.controller.database.vm(victim.vid).server
        assert after != before
        # the VM recovers its availability on the new server
        healthy = customer.attest(victim.vid, SecurityProperty.CPU_AVAILABILITY)
        assert healthy.report.healthy

    def test_migration_ordering_is_slowest(self):
        """Fig. 11: Termination < Suspension < Migration in reaction time."""
        times = {}
        for policy in (ResponseAction.TERMINATE, ResponseAction.SUSPEND,
                       ResponseAction.MIGRATE):
            cloud, customer, victim = self._attacked_cloud(policy)
            result = customer.attest(victim.vid, SecurityProperty.CPU_AVAILABILITY)
            times[policy] = result.response["reaction_ms"]
        assert times[ResponseAction.TERMINATE] < times[ResponseAction.SUSPEND]
        assert times[ResponseAction.SUSPEND] < times[ResponseAction.MIGRATE]


class TestPeriodicAttestation:
    def test_periodic_results_accumulate(self, cloud, alice):
        vm = alice.launch_vm(
            "small", "ubuntu",
            properties=[SecurityProperty.CPU_AVAILABILITY],
            workload={"name": "cpu_bound"},
        )
        alice.start_periodic_attestation(
            vm.vid, SecurityProperty.CPU_AVAILABILITY, frequency_ms=10_000.0
        )
        cloud.run_for(65_000.0)
        results = alice.periodic_results(vm.vid, SecurityProperty.CPU_AVAILABILITY)
        assert len(results) >= 3
        assert all(r.report.healthy for r in results)
        assert [r.seq for r in results] == sorted(r.seq for r in results)

    def test_stop_periodic(self, cloud, alice):
        vm = alice.launch_vm(
            "small", "ubuntu",
            properties=[SecurityProperty.CPU_AVAILABILITY],
            workload={"name": "cpu_bound"},
        )
        alice.start_periodic_attestation(
            vm.vid, SecurityProperty.CPU_AVAILABILITY, frequency_ms=10_000.0
        )
        cloud.run_for(25_000.0)
        alice.stop_periodic_attestation(vm.vid, SecurityProperty.CPU_AVAILABILITY)
        count = len(alice.periodic_results(vm.vid, SecurityProperty.CPU_AVAILABILITY))
        cloud.run_for(40_000.0)
        assert len(
            alice.periodic_results(vm.vid, SecurityProperty.CPU_AVAILABILITY)
        ) == count

    def test_random_interval_mode(self, cloud, alice):
        vm = alice.launch_vm(
            "small", "ubuntu",
            properties=[SecurityProperty.CPU_AVAILABILITY],
            workload={"name": "cpu_bound"},
        )
        alice.start_periodic_attestation(
            vm.vid, SecurityProperty.CPU_AVAILABILITY,
            random_range_ms=(5_000.0, 15_000.0),
        )
        cloud.run_for(60_000.0)
        assert len(
            alice.periodic_results(vm.vid, SecurityProperty.CPU_AVAILABILITY)
        ) >= 3


class TestProtocolSecurityEndToEnd:
    def test_eavesdropper_learns_no_report_contents(self, cloud, alice):
        eavesdropper = Eavesdropper()
        cloud.network.install_attacker(eavesdropper)
        vm = alice.launch_vm(
            "small", "ubuntu", properties=[SecurityProperty.RUNTIME_INTEGRITY,
                                           SecurityProperty.STARTUP_INTEGRITY]
        )
        alice.attest(vm.vid, SecurityProperty.RUNTIME_INTEGRITY)
        # nothing report-like crosses in plaintext
        assert not eavesdropper.saw_plaintext(b"whitelisted")
        assert not eavesdropper.saw_plaintext(b"sshd")
        assert eavesdropper.captured

    def test_wrong_customer_cannot_attest(self, cloud, alice):
        mallory = cloud.register_customer("mallory")
        vm = alice.launch_vm(
            "small", "ubuntu", properties=[SecurityProperty.STARTUP_INTEGRITY]
        )
        with pytest.raises(ProtocolError):
            mallory.attest(vm.vid, SecurityProperty.STARTUP_INTEGRITY)

    def test_terminated_vm_cannot_be_attested(self, cloud, alice):
        vm = alice.launch_vm(
            "small", "ubuntu", properties=[SecurityProperty.CPU_AVAILABILITY],
            workload={"name": "cpu_bound"},
        )
        alice.terminate_vm(vm.vid)
        result = alice.attest(vm.vid, SecurityProperty.CPU_AVAILABILITY)
        # collection fails on the server; surfaced as unhealthy, not forged
        assert not result.report.healthy
