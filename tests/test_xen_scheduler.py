"""Tests for the Xen credit-scheduler model.

These tests pin down the semantics the paper's attacks rely on: fair
sharing between equal-weight CPU-bound domains, wake-up boost preemption,
tick-sampled credit debiting, and 30 ms timeslice rotation.
"""

import pytest

from repro.common.errors import SchedulingError
from repro.common.identifiers import VmId
from repro.common.rng import DeterministicRng
from repro.xen import (
    CREDITS_PER_TICK,
    TICK_MS,
    TIMESLICE_MS,
    CpuBoundWorkload,
    FiniteCpuBoundWorkload,
    Hypervisor,
    IdleWorkload,
    IoBoundWorkload,
    PhasedWorkload,
    Priority,
    VCpuState,
)
from repro.xen.scheduler import vcpu_priority
from repro.xen.workload import BlockSpec, Burst, Workload


class _IntervalRecorder:
    """Collects continuous run intervals per domain."""

    def __init__(self):
        self.intervals = []

    def on_run_interval(self, vcpu, start, end):
        self.intervals.append((vcpu.domain.vid, start, end))

    def durations_for(self, vid):
        return [end - start for v, start, end in self.intervals if v == vid]


class TestSoloExecution:
    def test_solo_cpu_bound_uses_whole_cpu(self):
        hv = Hypervisor()
        dom = hv.create_domain(VmId("vm-a"), CpuBoundWorkload())
        hv.run_for(1000.0)
        assert dom.relative_cpu_usage(hv.now) == pytest.approx(1.0, abs=0.01)

    def test_solo_finite_program_finishes_in_own_cpu_time(self):
        hv = Hypervisor()
        hv.create_domain(VmId("vm-a"), FiniteCpuBoundWorkload(500.0))
        finish = hv.run_until_domain_finishes(VmId("vm-a"))
        assert finish == pytest.approx(500.0, abs=1.0)

    def test_solo_run_intervals_are_timeslices(self):
        recorder = _IntervalRecorder()
        hv = Hypervisor()
        hv.add_monitor(recorder)
        hv.create_domain(VmId("vm-a"), CpuBoundWorkload())
        hv.run_for(600.0)
        durations = recorder.durations_for(VmId("vm-a"))
        assert durations, "expected run intervals"
        # a solo CPU-bound VM shows the Xen default 30 ms interval
        assert all(d == pytest.approx(TIMESLICE_MS) for d in durations)

    def test_idle_domain_uses_almost_nothing(self):
        hv = Hypervisor()
        dom = hv.create_domain(VmId("vm-idle"), IdleWorkload())
        hv.run_for(5000.0)
        assert dom.relative_cpu_usage(hv.now) < 0.001


class TestFairSharing:
    def test_two_cpu_bound_domains_split_evenly(self):
        hv = Hypervisor()
        a = hv.create_domain(VmId("vm-a"), CpuBoundWorkload())
        b = hv.create_domain(VmId("vm-b"), CpuBoundWorkload())
        hv.run_for(6000.0)
        assert a.relative_cpu_usage(hv.now) == pytest.approx(0.5, abs=0.05)
        assert b.relative_cpu_usage(hv.now) == pytest.approx(0.5, abs=0.05)

    def test_weights_bias_the_split(self):
        hv = Hypervisor()
        heavy = hv.create_domain(VmId("vm-h"), CpuBoundWorkload(), weight=512)
        light = hv.create_domain(VmId("vm-l"), CpuBoundWorkload(), weight=256)
        hv.run_for(12000.0)
        ratio = heavy.cumulative_runtime / light.cumulative_runtime
        assert ratio > 1.3  # heavier domain gets materially more CPU

    def test_finite_program_doubles_with_cpu_bound_corunner(self):
        hv = Hypervisor()
        hv.create_domain(VmId("victim"), FiniteCpuBoundWorkload(1000.0))
        hv.create_domain(VmId("other"), CpuBoundWorkload())
        finish = hv.run_until_domain_finishes(VmId("victim"))
        slowdown = finish / 1000.0
        assert 1.7 <= slowdown <= 2.4

    def test_io_bound_corunner_barely_slows_victim(self):
        hv = Hypervisor()
        rng = DeterministicRng(7)
        hv.create_domain(VmId("victim"), FiniteCpuBoundWorkload(1000.0))
        hv.create_domain(VmId("io"), IoBoundWorkload(rng, burst_ms=1.0, wait_ms=9.0))
        finish = hv.run_until_domain_finishes(VmId("victim"))
        assert finish / 1000.0 < 1.35

    def test_two_domains_on_distinct_pcpus_do_not_interfere(self):
        hv = Hypervisor(num_pcpus=2)
        hv.create_domain(VmId("victim"), FiniteCpuBoundWorkload(500.0), pcpus=[0])
        hv.create_domain(VmId("other"), CpuBoundWorkload(), pcpus=[1])
        finish = hv.run_until_domain_finishes(VmId("victim"))
        assert finish == pytest.approx(500.0, abs=1.0)


class TestBoost:
    def test_waking_vcpu_with_credits_gets_boost(self):
        hv = Hypervisor()
        events = []

        class WakeWatcher:
            def on_wake(self, time, vcpu, boosted):
                events.append((vcpu.domain.vid, boosted))

        hv.add_monitor(WakeWatcher())
        rng = DeterministicRng(3)
        hv.create_domain(VmId("io"), IoBoundWorkload(rng))
        hv.run_for(200.0)
        io_wakes = [boosted for vid, boosted in events if vid == VmId("io")]
        assert io_wakes and all(io_wakes)

    def test_boost_preempts_running_cpu_bound(self):
        """An IO vCPU waking mid-timeslice should get the CPU immediately."""
        recorder = _IntervalRecorder()
        hv = Hypervisor()
        hv.add_monitor(recorder)
        rng = DeterministicRng(3)
        hv.create_domain(VmId("cpu"), CpuBoundWorkload())
        hv.create_domain(VmId("io"), IoBoundWorkload(rng, burst_ms=1.0, wait_ms=7.0))
        hv.run_for(500.0)
        cpu_durations = recorder.durations_for(VmId("cpu"))
        # the CPU hog gets chopped into sub-timeslice intervals by boosts
        assert any(d < TIMESLICE_MS - 1.0 for d in cpu_durations)

    def test_boost_cleared_by_tick(self):
        hv = Hypervisor()
        dom = hv.create_domain(VmId("vm-a"), CpuBoundWorkload())
        vcpu = dom.vcpus[0]
        vcpu.boosted = True
        hv.run_for(TICK_MS + 1.0)
        assert not vcpu.boosted

    def test_tick_debits_running_vcpu(self):
        hv = Hypervisor()
        dom = hv.create_domain(VmId("vm-a"), CpuBoundWorkload())
        vcpu = dom.vcpus[0]
        before = vcpu.credits
        hv.run_for(TICK_MS + 0.5)
        assert vcpu.credits <= before - CREDITS_PER_TICK + 0.01


class TestIpi:
    def test_ipi_wakes_waiting_vcpu(self):
        class PingPong(Workload):
            """vCPU 0 runs then IPIs vCPU 1 and waits, and vice versa."""

            def next_burst(self, vcpu):
                other = 1 - vcpu.index
                return Burst(cpu_ms=2.0, block=BlockSpec.wait_ipi(),
                             ipi_targets=(other,))

        hv = Hypervisor()
        dom = hv.create_domain(VmId("pp"), PingPong(), num_vcpus=2, pcpus=[0, 0])
        hv.run_for(100.0)
        # both vCPUs executed: the IPI chain kept the ping-pong alive
        assert dom.vcpus[0].cumulative_runtime > 0
        assert dom.vcpus[1].cumulative_runtime > 0

    def test_ipi_to_unknown_domain_rejected(self):
        hv = Hypervisor()
        with pytest.raises(SchedulingError):
            hv.send_ipi(VmId("ghost"), 0)

    def test_ipi_to_bad_vcpu_rejected(self):
        hv = Hypervisor()
        hv.create_domain(VmId("vm-a"), CpuBoundWorkload())
        with pytest.raises(SchedulingError):
            hv.send_ipi(VmId("vm-a"), 5)

    def test_ipi_to_running_vcpu_is_absorbed(self):
        hv = Hypervisor()
        hv.create_domain(VmId("vm-a"), CpuBoundWorkload())
        hv.run_for(5.0)
        hv.send_ipi(VmId("vm-a"), 0)  # must not crash or double-schedule
        hv.run_for(5.0)


class TestDomainLifecycle:
    def test_destroy_running_domain(self):
        hv = Hypervisor()
        hv.create_domain(VmId("vm-a"), CpuBoundWorkload())
        hv.run_for(50.0)
        dom = hv.destroy_domain(VmId("vm-a"))
        assert all(v.state is VCpuState.DONE for v in dom.vcpus)
        hv.run_for(50.0)  # engine keeps running without the domain

    def test_destroy_frees_cpu_for_others(self):
        hv = Hypervisor()
        hv.create_domain(VmId("hog"), CpuBoundWorkload())
        hv.create_domain(VmId("victim"), FiniteCpuBoundWorkload(300.0))
        hv.run_for(100.0)
        hv.destroy_domain(VmId("hog"))
        finish = hv.run_until_domain_finishes(VmId("victim"))
        assert finish < 650.0  # far better than the 2x share would give

    def test_duplicate_vid_rejected(self):
        hv = Hypervisor()
        hv.create_domain(VmId("vm-a"), CpuBoundWorkload())
        with pytest.raises(SchedulingError):
            hv.create_domain(VmId("vm-a"), CpuBoundWorkload())

    def test_destroy_unknown_rejected(self):
        with pytest.raises(SchedulingError):
            Hypervisor().destroy_domain(VmId("ghost"))

    def test_bad_pcpu_pin_rejected(self):
        hv = Hypervisor(num_pcpus=1)
        with pytest.raises(SchedulingError):
            hv.create_domain(VmId("vm-a"), CpuBoundWorkload(), pcpus=[3])


class TestWorkloadValidation:
    def test_finite_requires_positive_demand(self):
        with pytest.raises(ValueError):
            FiniteCpuBoundWorkload(0.0)

    def test_phased_fraction_bounds(self):
        rng = DeterministicRng(0)
        with pytest.raises(ValueError):
            PhasedWorkload(rng, cpu_fraction=0.0)
        with pytest.raises(ValueError):
            PhasedWorkload(rng, cpu_fraction=1.5)

    def test_phased_duty_cycle_near_target(self):
        hv = Hypervisor()
        rng = DeterministicRng(11)
        dom = hv.create_domain(VmId("ph"), PhasedWorkload(rng, cpu_fraction=0.3))
        hv.run_for(10000.0)
        assert dom.relative_cpu_usage(hv.now) == pytest.approx(0.3, abs=0.08)

    def test_io_bound_validation(self):
        with pytest.raises(ValueError):
            IoBoundWorkload(DeterministicRng(0), burst_ms=0.0)

    def test_priority_ordering(self):
        assert Priority.BOOST < Priority.UNDER < Priority.OVER

    def test_vcpu_priority_reflects_credits(self):
        hv = Hypervisor()
        dom = hv.create_domain(VmId("vm-a"), CpuBoundWorkload())
        vcpu = dom.vcpus[0]
        vcpu.credits = 10
        assert vcpu_priority(vcpu) == Priority.UNDER
        vcpu.credits = -10
        assert vcpu_priority(vcpu) == Priority.OVER
        vcpu.boosted = True
        assert vcpu_priority(vcpu) == Priority.BOOST
