"""Soak test: a busy cloud run end to end, with global invariants.

Many customers, mixed workloads, periodic attestations, attacks landing
mid-run, remediations firing — after all of it, every consistency
property of the system must still hold: audit chains verify, the
controller's database matches the servers' reality, no VM is in an
impossible state, and every attack that ran was detected.
"""

import pytest

from repro import CloudMonatt, SecurityProperty
from repro.controller.response import ResponseAction
from repro.guest import Rootkit
from repro.lifecycle.states import VmState


@pytest.fixture(scope="module")
def soaked_cloud():
    cloud = CloudMonatt(num_servers=4, num_pcpus=2, seed=101,
                        num_attestation_servers=2)
    cloud.controller.response.set_policy(
        SecurityProperty.CPU_AVAILABILITY, ResponseAction.MIGRATE
    )
    customers = {
        name: cloud.register_customer(name)
        for name in ("alice", "bob", "carol")
    }

    vms = {}
    workloads = ["database", "file", "web", "mail", "app", "stream"]
    for index, (name, customer) in enumerate(
        list(customers.items()) * 2
    ):
        vm = customer.launch_vm(
            "small",
            ("cirros", "fedora", "ubuntu")[index % 3],
            properties=[SecurityProperty.STARTUP_INTEGRITY,
                        SecurityProperty.RUNTIME_INTEGRITY,
                        SecurityProperty.CPU_AVAILABILITY],
            workload={"name": workloads[index % len(workloads)]},
        )
        vms.setdefault(name, []).append(vm)

    # periodic monitoring on a few VMs
    customers["alice"].start_periodic_attestation(
        vms["alice"][0].vid, SecurityProperty.CPU_AVAILABILITY,
        frequency_ms=25_000.0,
    )
    customers["bob"].start_periodic_attestation(
        vms["bob"][0].vid, SecurityProperty.RUNTIME_INTEGRITY,
        frequency_ms=40_000.0,
    )
    cloud.run_for(60_000.0)

    # attacks land mid-run
    infected = vms["carol"][0]
    Rootkit().infect(cloud.server_of(infected.vid).hosted[infected.vid].guest)
    victim = vms["alice"][1]
    victim_server = cloud.controller.database.vm(victim.vid).server
    attacker = customers["bob"].launch_vm(
        "medium", "ubuntu", workload={"name": "cpu_availability_attack"},
        pins=[0, 0], force_server=str(victim_server),
    )
    cloud.run_for(60_000.0)

    # detections + remediation
    rootkit_verdict = customers["carol"].attest(
        infected.vid, SecurityProperty.RUNTIME_INTEGRITY
    )
    availability_verdict = customers["alice"].attest(
        victim.vid, SecurityProperty.CPU_AVAILABILITY
    )

    # churn: terminate some VMs, keep running
    customers["bob"].terminate_vm(attacker.vid)
    customers["carol"].terminate_vm(vms["carol"][1].vid)
    cloud.run_for(60_000.0)

    return {
        "cloud": cloud,
        "customers": customers,
        "vms": vms,
        "rootkit_verdict": rootkit_verdict,
        "availability_verdict": availability_verdict,
        "victim": victim,
    }


class TestSoakOutcomes:
    def test_attacks_were_detected(self, soaked_cloud):
        assert not soaked_cloud["rootkit_verdict"].report.healthy
        assert not soaked_cloud["availability_verdict"].report.healthy

    def test_victim_was_migrated_and_recovered(self, soaked_cloud):
        cloud = soaked_cloud["cloud"]
        victim = soaked_cloud["victim"]
        events = [r.event for r in cloud.controller.vm_provenance(victim.vid)]
        assert "migrated" in events
        verdict = soaked_cloud["customers"]["alice"].attest(
            victim.vid, SecurityProperty.CPU_AVAILABILITY
        )
        assert verdict.report.healthy

    def test_periodic_results_flowed(self, soaked_cloud):
        alice = soaked_cloud["customers"]["alice"]
        vm = soaked_cloud["vms"]["alice"][0]
        results = alice.periodic_results(
            vm.vid, SecurityProperty.CPU_AVAILABILITY
        )
        assert len(results) >= 4
        assert [r.seq for r in results] == sorted(r.seq for r in results)


class TestSoakInvariants:
    def test_audit_chains_verify(self, soaked_cloud):
        cloud = soaked_cloud["cloud"]
        assert cloud.controller.provenance.verify() == []
        for attestation_server in cloud.attestation_servers:
            assert attestation_server.audit.verify() == []

    def test_database_matches_server_reality(self, soaked_cloud):
        cloud = soaked_cloud["cloud"]
        for record in cloud.controller.database.vms():
            hosted_somewhere = any(
                record.vid in server.hosted for server in cloud.servers.values()
            )
            if record.state in (VmState.ACTIVE, VmState.SUSPENDED):
                assert hosted_somewhere, record
                assert record.vid in cloud.servers[record.server].hosted
            elif record.state in (VmState.TERMINATED, VmState.REJECTED):
                assert not hosted_somewhere, record

    def test_no_vm_in_transitional_state(self, soaked_cloud):
        cloud = soaked_cloud["cloud"]
        for record in cloud.controller.database.vms():
            assert record.state is not VmState.MIGRATING
            assert record.state is not VmState.REQUESTED

    def test_capacity_never_exceeded(self, soaked_cloud):
        cloud = soaked_cloud["cloud"]
        for info in cloud.controller.database.servers():
            allocated = cloud.controller.database.allocated_vcpus(info.server_id)
            assert allocated <= info.capacity_vcpus

    def test_cpu_accounting_is_physical(self, soaked_cloud):
        cloud = soaked_cloud["cloud"]
        for server in cloud.servers.values():
            hypervisor = server.hypervisor
            total = sum(
                vcpu.runtime_until(cloud.now)
                for dom in hypervisor.domains.values()
                for vcpu in dom.vcpus
            )
            assert total <= cloud.now * hypervisor.num_pcpus + 1e-6

    def test_attestation_logs_are_consistent(self, soaked_cloud):
        cloud = soaked_cloud["cloud"]
        for attestation_server in cloud.attestation_servers:
            for record in attestation_server.database.log:
                assert attestation_server.database.knows_server(record.server)
