"""Tests for property interpretation — the semantic-gap bridge."""

import hashlib

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.common.identifiers import VmId
from repro.crypto.drbg import HmacDrbg
from repro.crypto.hashing import HashChain
from repro.monitors import IntegrityMeasurementUnit, SoftwareInventory
from repro.monitors.monitor_module import (
    MEAS_CPU_INTERVAL_HISTOGRAM,
    MEAS_CPU_USAGE,
    MEAS_KERNEL_MODULES,
    MEAS_PLATFORM_INTEGRITY,
    MEAS_TASK_LIST,
    MEAS_VM_IMAGE_INTEGRITY,
)
from repro.properties import (
    AvailabilityInterpreter,
    CovertChannelInterpreter,
    InterpreterRegistry,
    PropertyCatalog,
    PropertyReport,
    RuntimeIntegrityInterpreter,
    SecurityProperty,
    StartupIntegrityInterpreter,
    kmeans_two_cluster,
    significant_peaks,
)
from repro.properties.catalog import PropertySpec
from repro.properties.runtime_integrity import detect_hidden_tasks
from repro.tpm import TpmEmulator

VM = VmId("vm-0001")


class TestCatalog:
    def test_builtin_properties_supported(self):
        catalog = PropertyCatalog()
        for prop in SecurityProperty:
            assert catalog.supports(prop)

    def test_measurements_for_integrity(self):
        catalog = PropertyCatalog()
        assert MEAS_PLATFORM_INTEGRITY in catalog.measurements_for(
            SecurityProperty.STARTUP_INTEGRITY
        )

    def test_windowed_properties_have_windows(self):
        catalog = PropertyCatalog()
        assert catalog.spec(SecurityProperty.CPU_AVAILABILITY).default_window_ms > 0
        assert catalog.spec(SecurityProperty.STARTUP_INTEGRITY).default_window_ms == 0

    def test_register_custom_property(self):
        catalog = PropertyCatalog()
        catalog.register(
            SecurityProperty.CPU_AVAILABILITY,
            PropertySpec(measurements=(MEAS_CPU_USAGE,), default_window_ms=99.0),
        )
        assert catalog.spec(SecurityProperty.CPU_AVAILABILITY).default_window_ms == 99.0

    def test_empty_measurements_rejected(self):
        with pytest.raises(ConfigurationError):
            PropertyCatalog().register(
                SecurityProperty.CPU_AVAILABILITY, PropertySpec(measurements=())
            )


class TestStartupIntegrity:
    @pytest.fixture()
    def setup(self):
        tpm = TpmEmulator(HmacDrbg(1), key_bits=512)
        unit = IntegrityMeasurementUnit(tpm)
        inventory = SoftwareInventory.pristine_platform()
        unit.measure_platform(inventory)
        image = b"pristine ubuntu image"
        unit.measure_vm_image(VM, image)
        interpreter = StartupIntegrityInterpreter()
        interpreter.add_good_platform(
            IntegrityMeasurementUnit.expected_platform_value(inventory)
        )
        interpreter.add_good_image(
            "ubuntu", IntegrityMeasurementUnit.expected_image_value(image)
        )
        interpreter.expect_image(VM, "ubuntu")
        return unit, interpreter

    def _measurements(self, unit):
        return {
            MEAS_PLATFORM_INTEGRITY: unit.platform_measurement(),
            MEAS_VM_IMAGE_INTEGRITY: unit.vm_image_measurement(VM),
        }

    def test_pristine_system_healthy(self, setup):
        unit, interpreter = setup
        report = interpreter.interpret(VM, self._measurements(unit))
        assert report.healthy
        assert report.details["platform_known_good"]

    def test_tampered_image_detected(self, setup):
        unit, interpreter = setup
        unit.measure_vm_image(VM, b"pristine ubuntu image<malware>")
        report = interpreter.interpret(VM, self._measurements(unit))
        assert not report.healthy
        assert not report.details["image_known_good"]
        assert report.details["platform_known_good"]

    def test_tampered_platform_detected(self, setup):
        _, interpreter = setup
        tpm = TpmEmulator(HmacDrbg(9), key_bits=512)
        unit = IntegrityMeasurementUnit(tpm)
        tampered = SoftwareInventory.pristine_platform().tampered(
            "xen-hypervisor-4.2", b"evil hypervisor"
        )
        unit.measure_platform(tampered)
        unit.measure_vm_image(VM, b"pristine ubuntu image")
        report = interpreter.interpret(VM, self._measurements(unit))
        assert not report.healthy
        assert not report.details["platform_known_good"]

    def test_inconsistent_log_detected(self, setup):
        unit, interpreter = setup
        measurements = self._measurements(unit)
        # forge: alter the log so it no longer replays to the PCR value
        measurements[MEAS_PLATFORM_INTEGRITY]["log"][0] = b"\x00" * 32
        report = interpreter.interpret(VM, measurements)
        assert not report.healthy
        assert not report.details["platform_log_consistent"]

    def test_unknown_vm_image_expectation(self, setup):
        unit, interpreter = setup
        other = VmId("vm-0099")
        unit.measure_vm_image(other, b"pristine ubuntu image")
        measurements = {
            MEAS_PLATFORM_INTEGRITY: unit.platform_measurement(),
            MEAS_VM_IMAGE_INTEGRITY: unit.vm_image_measurement(other),
        }
        report = interpreter.interpret(other, measurements)
        assert not report.healthy

    def test_report_roundtrip(self, setup):
        unit, interpreter = setup
        report = interpreter.interpret(VM, self._measurements(unit))
        assert PropertyReport.from_dict(report.to_dict()) == report


class TestRuntimeIntegrity:
    WHITELIST = ["init", "sshd", "cron", "rsyslogd", "app-server"]

    def _measure(self, names, modules=("ext4",)):
        return {
            MEAS_TASK_LIST: [{"pid": i, "name": n} for i, n in enumerate(names)],
            MEAS_KERNEL_MODULES: list(modules),
        }

    def test_whitelisted_tasks_healthy(self):
        interpreter = RuntimeIntegrityInterpreter()
        interpreter.set_whitelist(VM, self.WHITELIST, ["ext4"])
        report = interpreter.interpret(VM, self._measure(self.WHITELIST))
        assert report.healthy

    def test_malware_task_detected(self):
        interpreter = RuntimeIntegrityInterpreter()
        interpreter.set_whitelist(VM, self.WHITELIST, ["ext4"])
        report = interpreter.interpret(VM, self._measure(self.WHITELIST + ["cryptominer"]))
        assert not report.healthy
        assert report.details["unknown_tasks"] == ["cryptominer"]

    def test_rogue_module_detected(self):
        interpreter = RuntimeIntegrityInterpreter()
        interpreter.set_whitelist(VM, self.WHITELIST, ["ext4"])
        report = interpreter.interpret(
            VM, self._measure(self.WHITELIST, modules=("ext4", "rootkit.ko"))
        )
        assert not report.healthy
        assert report.details["unknown_modules"] == ["rootkit.ko"]

    def test_no_whitelist_is_unhealthy(self):
        interpreter = RuntimeIntegrityInterpreter()
        report = interpreter.interpret(VM, self._measure(["init"]))
        assert not report.healthy

    def test_modules_ignored_without_module_whitelist(self):
        interpreter = RuntimeIntegrityInterpreter()
        interpreter.set_whitelist(VM, self.WHITELIST)  # no module whitelist
        report = interpreter.interpret(
            VM, self._measure(self.WHITELIST, modules=("anything",))
        )
        assert report.healthy

    def test_detect_hidden_tasks(self):
        attested = [{"pid": 1, "name": "init"}, {"pid": 66, "name": "keylogger"}]
        reported = [{"pid": 1, "name": "init"}]
        hidden = detect_hidden_tasks(attested, reported)
        assert hidden == [{"pid": 66, "name": "keylogger"}]


class TestCovertChannelDetection:
    def _histogram(self, spec: dict[int, int], bins=30) -> list[int]:
        counts = [0] * bins
        for bin_index, count in spec.items():
            counts[bin_index] = count
        return counts

    def test_bimodal_detected(self):
        interpreter = CovertChannelInterpreter()
        counts = self._histogram({4: 120, 24: 110, 5: 10, 23: 8})
        report = interpreter.interpret(VM, {MEAS_CPU_INTERVAL_HISTOGRAM: counts})
        assert not report.healthy
        assert len(report.details["peaks"]) == 2

    def test_benign_timeslice_peak_healthy(self):
        interpreter = CovertChannelInterpreter()
        counts = self._histogram({29: 200, 28: 5})
        report = interpreter.interpret(VM, {MEAS_CPU_INTERVAL_HISTOGRAM: counts})
        assert report.healthy

    def test_benign_io_peak_healthy(self):
        interpreter = CovertChannelInterpreter()
        counts = self._histogram({0: 150, 1: 90, 2: 20})
        report = interpreter.interpret(VM, {MEAS_CPU_INTERVAL_HISTOGRAM: counts})
        assert report.healthy

    def test_idle_vm_healthy(self):
        interpreter = CovertChannelInterpreter()
        report = interpreter.interpret(VM, {MEAS_CPU_INTERVAL_HISTOGRAM: [0] * 30})
        assert report.healthy
        assert report.details["total_intervals"] == 0

    def test_tiny_second_peak_not_flagged(self):
        """A trace second mode below the mass threshold stays benign."""
        interpreter = CovertChannelInterpreter()
        counts = self._histogram({29: 300, 4: 6})
        report = interpreter.interpret(VM, {MEAS_CPU_INTERVAL_HISTOGRAM: counts})
        assert report.healthy

    def test_significant_peaks_merging(self):
        distribution = [0.0] * 30
        distribution[10] = 0.3
        distribution[11] = 0.3  # adjacent: one peak
        distribution[20] = 0.4
        assert len(significant_peaks(distribution)) == 2

    def test_kmeans_separates_two_modes(self):
        distribution = [0.0] * 30
        distribution[4] = 0.5
        distribution[24] = 0.5
        result = kmeans_two_cluster(distribution)
        assert result["separation"] == pytest.approx(20.0)
        assert result["mass_low"] == pytest.approx(0.5)

    def test_kmeans_degenerate_single_bin(self):
        distribution = [0.0] * 30
        distribution[7] = 1.0
        assert kmeans_two_cluster(distribution)["separation"] == 0.0

    def test_kmeans_empty(self):
        assert kmeans_two_cluster([0.0] * 30)["separation"] == 0.0

    @given(st.integers(min_value=2, max_value=27))
    def test_two_well_separated_spikes_always_detected(self, low_bin):
        high_bin = 29 if low_bin < 25 else 0
        interpreter = CovertChannelInterpreter()
        counts = [0] * 30
        counts[low_bin] = 100
        counts[high_bin] = 100
        report = interpreter.interpret(VM, {MEAS_CPU_INTERVAL_HISTOGRAM: counts})
        assert not report.healthy


class TestAvailability:
    def _measure(self, cpu_ms, wall_ms=1000.0):
        return {MEAS_CPU_USAGE: {"cpu_ms": cpu_ms, "wall_ms": wall_ms}}

    def test_full_usage_healthy(self):
        interpreter = AvailabilityInterpreter()
        assert interpreter.interpret(VM, self._measure(990.0)).healthy

    def test_fair_share_healthy(self):
        interpreter = AvailabilityInterpreter(default_entitled_share=0.5)
        assert interpreter.interpret(VM, self._measure(480.0)).healthy

    def test_starved_vm_unhealthy(self):
        interpreter = AvailabilityInterpreter(default_entitled_share=0.5)
        report = interpreter.interpret(VM, self._measure(50.0))
        assert not report.healthy
        assert report.details["relative_usage"] == pytest.approx(0.05)

    def test_custom_entitled_share(self):
        interpreter = AvailabilityInterpreter()
        interpreter.set_entitled_share(VM, 1.0)
        # 50% usage is fine at 0.5 entitlement but not at 1.0
        assert not interpreter.interpret(VM, self._measure(500.0)).healthy

    def test_zero_wall_time(self):
        interpreter = AvailabilityInterpreter()
        report = interpreter.interpret(VM, self._measure(0.0, wall_ms=0.0))
        assert not report.healthy

    def test_validation(self):
        with pytest.raises(ValueError):
            AvailabilityInterpreter(default_entitled_share=0.0)
        with pytest.raises(ValueError):
            AvailabilityInterpreter(tolerance=1.5)
        with pytest.raises(ValueError):
            AvailabilityInterpreter(steal_threshold=1.0)
        with pytest.raises(ValueError):
            AvailabilityInterpreter().set_entitled_share(VM, 2.0)


class TestDemandAwareAvailability:
    """With steal-time data, starvation requires denied demand."""

    def _measure(self, cpu_ms, wait_ms, wall_ms=1000.0):
        return {MEAS_CPU_USAGE: {"cpu_ms": cpu_ms, "wall_ms": wall_ms,
                                 "wait_ms": wait_ms}}

    def test_idle_by_choice_is_healthy(self):
        """Low usage with no waiting: the VM never asked (the false
        positive the legacy raw-usage rule had on I/O-bound VMs)."""
        interpreter = AvailabilityInterpreter()
        report = interpreter.interpret(VM, self._measure(60.0, 5.0))
        assert report.healthy
        assert "idle by choice" in report.explanation

    def test_starved_demand_is_unhealthy(self):
        interpreter = AvailabilityInterpreter()
        report = interpreter.interpret(VM, self._measure(50.0, 900.0))
        assert not report.healthy
        assert report.details["steal_ratio"] > 0.9

    def test_fair_halving_is_healthy(self):
        """Two CPU-bound VMs: usage 0.5, steal exactly 0.5 — fair, not
        starved (the threshold sits above the fair-share point)."""
        interpreter = AvailabilityInterpreter()
        report = interpreter.interpret(VM, self._measure(500.0, 500.0))
        assert report.healthy

    def test_starved_io_bound_vm_detected(self):
        """A low-demand VM whose little demand is mostly denied: starved
        even though its absolute usage was always going to be small."""
        interpreter = AvailabilityInterpreter()
        report = interpreter.interpret(VM, self._measure(8.0, 95.0))
        assert not report.healthy

    def test_zero_demand_healthy(self):
        interpreter = AvailabilityInterpreter()
        assert interpreter.interpret(VM, self._measure(0.0, 0.0)).healthy

    def test_legacy_measurement_uses_raw_threshold(self):
        interpreter = AvailabilityInterpreter()
        legacy = {MEAS_CPU_USAGE: {"cpu_ms": 50.0, "wall_ms": 1000.0}}
        assert not interpreter.interpret(VM, legacy).healthy


class TestRegistry:
    def test_dispatch(self):
        registry = InterpreterRegistry()
        registry.register(AvailabilityInterpreter())
        report = registry.interpret(
            SecurityProperty.CPU_AVAILABILITY,
            VM,
            {MEAS_CPU_USAGE: {"cpu_ms": 900.0, "wall_ms": 1000.0}},
        )
        assert report.healthy

    def test_supports(self):
        registry = InterpreterRegistry()
        assert not registry.supports(SecurityProperty.CPU_AVAILABILITY)
        registry.register(AvailabilityInterpreter())
        assert registry.supports(SecurityProperty.CPU_AVAILABILITY)

    def test_missing_interpreter_rejected(self):
        with pytest.raises(ConfigurationError):
            InterpreterRegistry().interpret(SecurityProperty.RUNTIME_INTEGRITY, VM, {})
