"""Unit tests for the cloud server node (management + attestation client)."""

import pytest

from repro.common.errors import PlacementError, ProtocolError, StateError
from repro.common.identifiers import ServerId, VmId
from repro.common.rng import DeterministicRng
from repro.crypto.certificates import CertificateAuthority
from repro.crypto.drbg import HmacDrbg
from repro.guest import Rootkit
from repro.lifecycle.timing import CostModel
from repro.network.network import Network
from repro.network.secure_channel import SecureEndpoint
from repro.protocol import messages as msg
from repro.server import CloudServer
from repro.sim.engine import Engine

KEY_BITS = 512


@pytest.fixture()
def rig():
    """A server plus a management endpoint speaking to it directly."""
    engine = Engine()
    network = Network(engine, DeterministicRng(1), latency_ms=0.1)
    ca = CertificateAuthority("pCA", HmacDrbg(7), key_bits=KEY_BITS)
    cost = CostModel(engine=engine, rng=DeterministicRng(2))
    server = CloudServer(
        server_id=ServerId("server-0001"),
        network=network,
        engine=engine,
        drbg=HmacDrbg(10),
        rng=DeterministicRng(3),
        ca=ca,
        cost_model=cost,
        num_pcpus=2,
        key_bits=KEY_BITS,
    )
    manager = SecureEndpoint("manager", network, HmacDrbg(11), ca, KEY_BITS)
    manager.handler = lambda peer, body: {}
    return server, manager, engine


def launch_body(vid="vm-0001", flavor_vcpus=1, workload="cpu_bound", pins=None):
    return {
        msg.KEY_TYPE: msg.MSG_LAUNCH,
        msg.KEY_VID: vid,
        "image": {"name": "cirros", "size_mb": 25, "content": b"cirros image"},
        "flavor": {"name": "small", "vcpus": flavor_vcpus,
                   "memory_mb": 2048, "disk_gb": 20},
        "workload": {"name": workload},
        "pins": pins,
    }


class TestLaunchAndTerminate:
    def test_launch_creates_domain_and_guest(self, rig):
        server, manager, _ = rig
        response = manager.call("server-0001", launch_body())
        assert response[msg.KEY_STATUS] == "active"
        vid = VmId("vm-0001")
        assert vid in server.hypervisor.domains
        assert server.hosted[vid].guest is not None
        # the image was measured before boot
        assert server.integrity_unit.vm_image_measurement(vid)["pcr"]

    def test_duplicate_launch_rejected(self, rig):
        server, manager, _ = rig
        manager.call("server-0001", launch_body())
        with pytest.raises(StateError):
            manager.call("server-0001", launch_body())

    def test_capacity_enforced(self, rig):
        server, manager, _ = rig
        # capacity: 2 pcpus x 4 overcommit = 8 vcpus
        manager.call("server-0001", launch_body("vm-1", flavor_vcpus=4))
        manager.call("server-0001", launch_body("vm-2", flavor_vcpus=4))
        with pytest.raises(PlacementError):
            manager.call("server-0001", launch_body("vm-3", flavor_vcpus=1))

    def test_terminate_frees_everything(self, rig):
        server, manager, _ = rig
        manager.call("server-0001", launch_body())
        manager.call(
            "server-0001",
            {msg.KEY_TYPE: msg.MSG_TERMINATE, msg.KEY_VID: "vm-0001"},
        )
        vid = VmId("vm-0001")
        assert vid not in server.hosted
        assert vid not in server.hypervisor.domains
        with pytest.raises(StateError):
            server.integrity_unit.vm_image_measurement(vid)

    def test_terminate_unknown_rejected(self, rig):
        server, manager, _ = rig
        with pytest.raises(StateError):
            manager.call(
                "server-0001",
                {msg.KEY_TYPE: msg.MSG_TERMINATE, msg.KEY_VID: "ghost"},
            )

    def test_unknown_message_type_rejected(self, rig):
        server, manager, _ = rig
        with pytest.raises(ProtocolError):
            manager.call("server-0001", {msg.KEY_TYPE: "format_disks"})

    def test_bad_pin_count_rejected(self, rig):
        server, manager, _ = rig
        with pytest.raises(PlacementError):
            manager.call(
                "server-0001", launch_body(flavor_vcpus=2, pins=[0])
            )


class TestSuspendResume:
    def test_suspend_stops_execution(self, rig):
        server, manager, engine = rig
        manager.call("server-0001", launch_body())
        vid = VmId("vm-0001")
        manager.call(
            "server-0001", {msg.KEY_TYPE: msg.MSG_SUSPEND, msg.KEY_VID: "vm-0001"}
        )
        assert vid not in server.hypervisor.domains
        assert server.hosted[vid].suspended

    def test_double_suspend_rejected(self, rig):
        server, manager, _ = rig
        manager.call("server-0001", launch_body())
        manager.call(
            "server-0001", {msg.KEY_TYPE: msg.MSG_SUSPEND, msg.KEY_VID: "vm-0001"}
        )
        with pytest.raises(StateError):
            manager.call(
                "server-0001",
                {msg.KEY_TYPE: msg.MSG_SUSPEND, msg.KEY_VID: "vm-0001"},
            )

    def test_resume_restores_execution(self, rig):
        server, manager, engine = rig
        manager.call("server-0001", launch_body())
        vid = VmId("vm-0001")
        manager.call(
            "server-0001", {msg.KEY_TYPE: msg.MSG_SUSPEND, msg.KEY_VID: "vm-0001"}
        )
        manager.call(
            "server-0001", {msg.KEY_TYPE: msg.MSG_RESUME, msg.KEY_VID: "vm-0001"}
        )
        assert vid in server.hypervisor.domains
        before = server.hypervisor.domains[vid].cumulative_runtime
        engine.run_until(engine.now + 500.0)
        assert server.hypervisor.domains[vid].cumulative_runtime >= before

    def test_resume_without_suspend_rejected(self, rig):
        server, manager, _ = rig
        manager.call("server-0001", launch_body())
        with pytest.raises(StateError):
            manager.call(
                "server-0001",
                {msg.KEY_TYPE: msg.MSG_RESUME, msg.KEY_VID: "vm-0001"},
            )

    def test_suspend_preserves_guest_state(self, rig):
        server, manager, _ = rig
        manager.call("server-0001", launch_body())
        vid = VmId("vm-0001")
        Rootkit().infect(server.hosted[vid].guest)
        manager.call(
            "server-0001", {msg.KEY_TYPE: msg.MSG_SUSPEND, msg.KEY_VID: "vm-0001"}
        )
        manager.call(
            "server-0001", {msg.KEY_TYPE: msg.MSG_RESUME, msg.KEY_VID: "vm-0001"}
        )
        names = {p.name for p in server.hosted[vid].guest.memory_process_table()}
        assert "cryptominer" in names  # infection survives suspend/resume


class TestMigrationSnapshot:
    def test_roundtrip_preserves_malware(self, rig):
        """Live migration moves the guest memory image verbatim — the
        rootkit travels with the VM (why the destination re-attests)."""
        server, manager, engine = rig
        network = manager._network
        # a second server on the same network; rebuilding the CA from the
        # same seed yields identical key material, so its certificates
        # verify against the rig's trust root
        destination = CloudServer(
            server_id=ServerId("server-0002"),
            network=network,
            engine=engine,
            drbg=HmacDrbg(20),
            rng=DeterministicRng(4),
            ca=_shared_ca(),
            cost_model=server.cost,
            num_pcpus=2,
            key_bits=KEY_BITS,
        )
        manager.call("server-0001", launch_body())
        vid = VmId("vm-0001")
        Rootkit().infect(server.hosted[vid].guest)
        out = manager.call(
            "server-0001",
            {msg.KEY_TYPE: msg.MSG_MIGRATE_OUT, msg.KEY_VID: "vm-0001"},
        )
        assert vid not in server.hosted
        manager.call(
            "server-0002",
            {
                msg.KEY_TYPE: msg.MSG_MIGRATE_IN,
                msg.KEY_VID: "vm-0001",
                "snapshot": out["snapshot"],
            },
        )
        assert vid in destination.hosted
        names = {
            p.name for p in destination.hosted[vid].guest.memory_process_table()
        }
        assert "cryptominer" in names


def _shared_ca() -> CertificateAuthority:
    """A CA with the same deterministic key material as the rig's CA."""
    return CertificateAuthority("pCA", HmacDrbg(7), key_bits=KEY_BITS)


class TestInsecureServer:
    def test_insecure_server_hosts_but_cannot_attest(self):
        engine = Engine()
        network = Network(engine, DeterministicRng(1), latency_ms=0.1)
        ca = CertificateAuthority("pCA", HmacDrbg(7), key_bits=KEY_BITS)
        cost = CostModel(engine=engine, rng=DeterministicRng(2))
        server = CloudServer(
            server_id=ServerId("legacy-1"),
            network=network,
            engine=engine,
            drbg=HmacDrbg(10),
            rng=DeterministicRng(3),
            ca=ca,
            cost_model=cost,
            secure=False,
            key_bits=KEY_BITS,
        )
        manager = SecureEndpoint("manager", network, HmacDrbg(11), ca, KEY_BITS)
        manager.handler = lambda peer, body: {}
        manager.call("legacy-1", launch_body())
        assert server.supported_measurements() == []
        with pytest.raises(StateError):
            manager.call(
                "legacy-1",
                {
                    msg.KEY_TYPE: msg.MSG_MEASURE_REQUEST,
                    msg.KEY_VID: "vm-0001",
                    msg.KEY_REQUESTED: ["vmi.task_list"],
                    msg.KEY_NONCE: b"\x00" * 16,
                    msg.KEY_WINDOW: 0.0,
                },
            )
