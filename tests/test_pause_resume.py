"""Unit tests for forced vCPU pausing (intercepting-scan support)."""

import pytest

from repro.common.errors import SchedulingError
from repro.common.identifiers import VmId
from repro.xen import CpuBoundWorkload, FiniteCpuBoundWorkload, Hypervisor, VCpuState


class TestPause:
    def test_paused_domain_consumes_no_cpu(self):
        hv = Hypervisor()
        dom = hv.create_domain(VmId("a"), CpuBoundWorkload())
        hv.run_for(100.0)
        before = sum(v.runtime_until(hv.now) for v in dom.vcpus)
        hv.pause_domain(VmId("a"), 50.0)
        hv.run_for(40.0)  # still inside the pause window
        during = sum(v.runtime_until(hv.now) for v in dom.vcpus)
        assert during == pytest.approx(before, abs=0.01)

    def test_domain_resumes_after_pause(self):
        hv = Hypervisor()
        dom = hv.create_domain(VmId("a"), CpuBoundWorkload())
        hv.run_for(100.0)
        hv.pause_domain(VmId("a"), 50.0)
        hv.run_for(200.0)
        usage = dom.relative_cpu_usage(hv.now)
        # lost exactly the pause window: 250/300 of wall time
        assert usage == pytest.approx(250.0 / 300.0, abs=0.02)

    def test_finite_burst_resumes_where_it_stopped(self):
        """The interrupted burst's remaining demand is preserved."""
        hv = Hypervisor()
        hv.create_domain(VmId("prog"), FiniteCpuBoundWorkload(200.0))
        hv.run_for(100.0)
        hv.pause_domain(VmId("prog"), 70.0)
        finish = hv.run_until_domain_finishes(VmId("prog"))
        # 200 ms of CPU + 70 ms paused = 270 ms wall
        assert finish == pytest.approx(270.0, abs=1.0)

    def test_pause_releases_cpu_to_corunner(self):
        hv = Hypervisor()
        hv.create_domain(VmId("a"), CpuBoundWorkload())
        other = hv.create_domain(VmId("b"), CpuBoundWorkload())
        hv.run_for(300.0)
        before = sum(v.runtime_until(hv.now) for v in other.vcpus)
        hv.pause_domain(VmId("a"), 100.0)
        hv.run_for(100.0)
        after = sum(v.runtime_until(hv.now) for v in other.vcpus)
        # the co-runner got the whole pause window
        assert after - before == pytest.approx(100.0, abs=1.0)

    def test_pause_runnable_vcpu(self):
        hv = Hypervisor()
        dom_a = hv.create_domain(VmId("a"), CpuBoundWorkload())
        dom_b = hv.create_domain(VmId("b"), CpuBoundWorkload())
        hv.run_for(35.0)
        # one of the two is runnable (queued), the other running
        queued = next(
            d for d in (dom_a, dom_b)
            if d.vcpus[0].state is VCpuState.RUNNABLE
        )
        hv.pause_domain(queued.vid, 50.0)
        assert queued.vcpus[0].state is VCpuState.BLOCKED
        hv.run_for(100.0)
        assert queued.vcpus[0].runtime_until(hv.now) > 0

    def test_pause_unknown_domain_rejected(self):
        with pytest.raises(SchedulingError):
            Hypervisor().pause_domain(VmId("ghost"), 10.0)

    def test_nonpositive_pause_rejected(self):
        hv = Hypervisor()
        hv.create_domain(VmId("a"), CpuBoundWorkload())
        with pytest.raises(SchedulingError):
            hv.pause_domain(VmId("a"), 0.0)
