"""Adversarial tests for the appraiser: a lying cloud server.

The cloud servers are untrusted (threat model §3.3, except their Trust
and Monitor modules). These tests stand up a *dishonest* server endpoint
that returns crafted measurement responses, and assert the appraiser
rejects every class of lie: uncertified keys, bad signatures, unbound
quotes, stale nonces, renamed VMs, and missing measurements.
"""

import pytest

from repro.attest_server.appraiser import OatAppraiser
from repro.common.errors import ProtocolError, ReplayError, SignatureError
from repro.common.identifiers import ServerId, VmId
from repro.common.rng import DeterministicRng
from repro.crypto.certificates import CertificateAuthority, certificate_to_dict
from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import generate_keypair
from repro.crypto.signatures import sign
from repro.lifecycle.timing import CostModel
from repro.network.network import Network
from repro.network.secure_channel import SecureEndpoint
from repro.protocol import messages as msg
from repro.protocol.quotes import attestation_quote
from repro.sim.engine import Engine

KEY_BITS = 512
VID = VmId("vm-0001")
SERVER = ServerId("server-0001")
MEASUREMENTS = ("vmi.task_list",)


class LyingServer:
    """A server endpoint whose responses are attacker-controlled."""

    def __init__(self, network, ca, drbg):
        self.ca = ca
        self.endpoint = SecureEndpoint(str(SERVER), network, drbg, ca, KEY_BITS)
        self.endpoint.handler = self._handle
        # a properly certified session key (the honest baseline)
        self.session_keys = generate_keypair(HmacDrbg(900), bits=KEY_BITS)
        self.session_cert = ca.issue("anon-attester-x", self.session_keys.public)
        #: mutation applied to the honest response before sending
        self.mutate = lambda response: response

    def _handle(self, peer, body):
        nonce = bytes(body[msg.KEY_NONCE])
        measurements = {"vmi.task_list": [{"pid": 1, "name": "init"}]}
        payload = {
            msg.KEY_VID: str(VID),
            msg.KEY_REQUESTED: list(MEASUREMENTS),
            msg.KEY_MEASUREMENTS: measurements,
            msg.KEY_NONCE: nonce,
            msg.KEY_QUOTE: attestation_quote(
                str(VID), list(MEASUREMENTS), measurements, nonce
            ),
        }
        response = {
            **payload,
            msg.KEY_SIGNATURE: sign(self.session_keys.private, payload),
            msg.KEY_SESSION_CERT: certificate_to_dict(self.session_cert),
        }
        return self.mutate(response)


@pytest.fixture()
def harness():
    engine = Engine()
    network = Network(engine, DeterministicRng(1), latency_ms=0.1)
    ca = CertificateAuthority("pCA", HmacDrbg(7), key_bits=KEY_BITS)
    server = LyingServer(network, ca, HmacDrbg(10))
    as_endpoint = SecureEndpoint("as", network, HmacDrbg(11), ca, KEY_BITS)
    appraiser = OatAppraiser(
        as_endpoint, ca.public_key, HmacDrbg(12),
        CostModel(engine=engine, rng=DeterministicRng(2)),
    )
    return server, appraiser


def collect(appraiser):
    return appraiser.collect(SERVER, VID, MEASUREMENTS, window_ms=0.0)


class TestHonestBaseline:
    def test_honest_response_accepted(self, harness):
        server, appraiser = harness
        measurements = collect(appraiser)
        assert measurements["vmi.task_list"] == [{"pid": 1, "name": "init"}]


class TestLies:
    def test_tampered_measurements_rejected(self, harness):
        server, appraiser = harness

        def lie(response):
            response[msg.KEY_MEASUREMENTS] = {
                "vmi.task_list": [{"pid": 1, "name": "init"},
                                  {"pid": 2, "name": "looks-clean"}]
            }
            return response

        server.mutate = lie
        with pytest.raises(SignatureError):
            collect(appraiser)

    def test_uncertified_session_key_rejected(self, harness):
        server, appraiser = harness
        rogue_ca = CertificateAuthority("rogue", HmacDrbg(66), key_bits=KEY_BITS)
        rogue_cert = rogue_ca.issue("anon-attester-x", server.session_keys.public)

        def lie(response):
            response[msg.KEY_SESSION_CERT] = certificate_to_dict(rogue_cert)
            return response

        server.mutate = lie
        with pytest.raises(SignatureError):
            collect(appraiser)

    def test_attacker_keypair_with_honest_cert_rejected(self, harness):
        server, appraiser = harness
        attacker_keys = generate_keypair(HmacDrbg(123), bits=KEY_BITS)

        def lie(response):
            payload = {
                key: response[key]
                for key in (msg.KEY_VID, msg.KEY_REQUESTED,
                            msg.KEY_MEASUREMENTS, msg.KEY_NONCE, msg.KEY_QUOTE)
            }
            response[msg.KEY_SIGNATURE] = sign(attacker_keys.private, payload)
            return response

        server.mutate = lie
        with pytest.raises(SignatureError):
            collect(appraiser)

    def test_stale_nonce_rejected(self, harness):
        server, appraiser = harness

        def lie(response):
            stale = b"\x00" * 16
            response[msg.KEY_NONCE] = stale
            # even with a recomputed quote and signature over the stale
            # nonce, the appraiser must notice the nonce mismatch
            payload = {
                msg.KEY_VID: response[msg.KEY_VID],
                msg.KEY_REQUESTED: response[msg.KEY_REQUESTED],
                msg.KEY_MEASUREMENTS: response[msg.KEY_MEASUREMENTS],
                msg.KEY_NONCE: stale,
                msg.KEY_QUOTE: attestation_quote(
                    str(VID), list(MEASUREMENTS),
                    response[msg.KEY_MEASUREMENTS], stale,
                ),
            }
            response[msg.KEY_QUOTE] = payload[msg.KEY_QUOTE]
            response[msg.KEY_SIGNATURE] = sign(
                server.session_keys.private, payload
            )
            return response

        server.mutate = lie
        with pytest.raises(ReplayError):
            collect(appraiser)

    def test_unbound_quote_rejected(self, harness):
        server, appraiser = harness

        def lie(response):
            fake_quote = b"\xff" * 32
            payload = {
                key: response[key]
                for key in (msg.KEY_VID, msg.KEY_REQUESTED,
                            msg.KEY_MEASUREMENTS, msg.KEY_NONCE)
            }
            payload[msg.KEY_QUOTE] = fake_quote
            response[msg.KEY_QUOTE] = fake_quote
            response[msg.KEY_SIGNATURE] = sign(
                server.session_keys.private, payload
            )
            return response

        server.mutate = lie
        with pytest.raises(SignatureError):
            collect(appraiser)

    def test_renamed_vm_rejected(self, harness):
        server, appraiser = harness

        def lie(response):
            other = "vm-0099"
            measurements = response[msg.KEY_MEASUREMENTS]
            nonce = response[msg.KEY_NONCE]
            payload = {
                msg.KEY_VID: other,
                msg.KEY_REQUESTED: response[msg.KEY_REQUESTED],
                msg.KEY_MEASUREMENTS: measurements,
                msg.KEY_NONCE: nonce,
                msg.KEY_QUOTE: attestation_quote(
                    other, list(MEASUREMENTS), measurements, nonce
                ),
            }
            return {
                **payload,
                msg.KEY_SIGNATURE: sign(server.session_keys.private, payload),
                msg.KEY_SESSION_CERT: response[msg.KEY_SESSION_CERT],
            }

        server.mutate = lie
        with pytest.raises((ProtocolError, SignatureError)):
            collect(appraiser)

    def test_missing_measurement_rejected(self, harness):
        server, appraiser = harness

        def lie(response):
            measurements = {}
            nonce = response[msg.KEY_NONCE]
            payload = {
                msg.KEY_VID: str(VID),
                msg.KEY_REQUESTED: list(MEASUREMENTS),
                msg.KEY_MEASUREMENTS: measurements,
                msg.KEY_NONCE: nonce,
                msg.KEY_QUOTE: attestation_quote(
                    str(VID), list(MEASUREMENTS), measurements, nonce
                ),
            }
            return {
                **payload,
                msg.KEY_SIGNATURE: sign(server.session_keys.private, payload),
                msg.KEY_SESSION_CERT: response[msg.KEY_SESSION_CERT],
            }

        server.mutate = lie
        with pytest.raises(ProtocolError):
            collect(appraiser)

    def test_missing_field_rejected(self, harness):
        server, appraiser = harness

        def lie(response):
            del response[msg.KEY_QUOTE]
            return response

        server.mutate = lie
        with pytest.raises(ProtocolError):
            collect(appraiser)


class TestAblationSwitches:
    def test_disabled_signature_check_accepts_forgery(self, harness):
        """The ablation switch shows what the checks are worth: with
        signature checking off, a tampered response passes (quote must
        still be recomputed to match)."""
        server, appraiser = harness
        appraiser.check_signatures = False

        def lie(response):
            forged = {"vmi.task_list": [{"pid": 1, "name": "all-clean"}]}
            nonce = response[msg.KEY_NONCE]
            response[msg.KEY_MEASUREMENTS] = forged
            response[msg.KEY_QUOTE] = attestation_quote(
                str(VID), list(MEASUREMENTS), forged, nonce
            )
            # signature left stale: nobody checks it now
            return response

        server.mutate = lie
        measurements = collect(appraiser)
        assert measurements["vmi.task_list"][0]["name"] == "all-clean"

    def test_disabled_nonce_check_accepts_stale(self, harness):
        server, appraiser = harness
        appraiser.check_nonces = False
        appraiser.check_signatures = False

        def lie(response):
            stale = b"\x00" * 16
            measurements = response[msg.KEY_MEASUREMENTS]
            response[msg.KEY_NONCE] = stale
            response[msg.KEY_QUOTE] = attestation_quote(
                str(VID), list(MEASUREMENTS), measurements, stale
            )
            return response

        server.mutate = lie
        assert collect(appraiser) is not None
