"""Tests for DRBG, primes, RSA keygen, and signatures."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import CryptoError, SignatureError
from repro.crypto.drbg import HmacDrbg
from repro.crypto.primes import generate_prime, is_probable_prime
from repro.crypto.rsa import generate_keypair, private_op, public_op
from repro.crypto.signatures import is_valid, sign, verify

KEY_BITS = 512  # small keys keep the suite fast; logic is size-independent


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(HmacDrbg(1234, "test"), bits=KEY_BITS)


@pytest.fixture(scope="module")
def other_keypair():
    return generate_keypair(HmacDrbg(5678, "test"), bits=KEY_BITS)


class TestDrbg:
    def test_deterministic(self):
        assert HmacDrbg(1).generate(64) == HmacDrbg(1).generate(64)

    def test_seed_changes_stream(self):
        assert HmacDrbg(1).generate(32) != HmacDrbg(2).generate(32)

    def test_personalization_changes_stream(self):
        assert HmacDrbg(1, "a").generate(32) != HmacDrbg(1, "b").generate(32)

    def test_stream_does_not_repeat(self):
        drbg = HmacDrbg(1)
        chunks = {drbg.generate(32) for _ in range(50)}
        assert len(chunks) == 50

    def test_fork_independent(self):
        drbg = HmacDrbg(1)
        assert drbg.fork("x").generate(16) != drbg.fork("y").generate(16)

    def test_randint_below_bounds(self):
        drbg = HmacDrbg(9)
        for _ in range(200):
            assert 0 <= drbg.randint_below(17) < 17

    def test_randint_below_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            HmacDrbg(0).randint_below(0)


class TestPrimes:
    def test_known_primes(self):
        drbg = HmacDrbg(0)
        for p in [2, 3, 5, 101, 65537, 2**127 - 1]:
            assert is_probable_prime(p, drbg)

    def test_known_composites(self):
        drbg = HmacDrbg(0)
        for n in [0, 1, 4, 100, 65537 * 3, (2**61 - 1) * (2**31 - 1)]:
            assert not is_probable_prime(n, drbg)

    def test_carmichael_number_rejected(self):
        assert not is_probable_prime(561, HmacDrbg(0))
        assert not is_probable_prime(41041, HmacDrbg(0))

    def test_generated_prime_has_exact_bits(self):
        p = generate_prime(128, HmacDrbg(3))
        assert p.bit_length() == 128
        assert p % 2 == 1

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            generate_prime(4, HmacDrbg(0))


class TestKeygen:
    def test_modulus_size(self, keypair):
        assert keypair.public.bits == KEY_BITS

    def test_deterministic_per_seed(self):
        a = generate_keypair(HmacDrbg(7), bits=256)
        b = generate_keypair(HmacDrbg(7), bits=256)
        assert a.public == b.public

    def test_distinct_seeds_distinct_keys(self, keypair, other_keypair):
        assert keypair.public != other_keypair.public

    def test_roundtrip_raw_ops(self, keypair):
        message = 123456789
        assert public_op(keypair.public, private_op(keypair.private, message)) == message

    def test_crt_matches_plain_pow(self, keypair):
        value = 987654321
        assert private_op(keypair.private, value) == pow(
            value, keypair.private.d, keypair.private.n
        )

    def test_out_of_range_rejected(self, keypair):
        with pytest.raises(CryptoError):
            public_op(keypair.public, keypair.public.n)

    def test_odd_bits_rejected(self):
        with pytest.raises(CryptoError):
            generate_keypair(HmacDrbg(0), bits=257)

    def test_public_key_dict_roundtrip(self, keypair):
        from repro.crypto.keys import RsaPublicKey

        assert RsaPublicKey.from_dict(keypair.public.to_dict()) == keypair.public


class TestSignatures:
    def test_sign_verify_roundtrip(self, keypair):
        message = {"vid": "vm-0001", "report": "healthy"}
        verify(keypair.public, message, sign(keypair.private, message))

    def test_wrong_message_rejected(self, keypair):
        sig = sign(keypair.private, {"report": "healthy"})
        with pytest.raises(SignatureError):
            verify(keypair.public, {"report": "compromised"}, sig)

    def test_wrong_key_rejected(self, keypair, other_keypair):
        sig = sign(keypair.private, "msg")
        with pytest.raises(SignatureError):
            verify(other_keypair.public, "msg", sig)

    def test_bitflip_rejected(self, keypair):
        sig = bytearray(sign(keypair.private, "msg"))
        sig[5] ^= 0x01
        with pytest.raises(SignatureError):
            verify(keypair.public, "msg", bytes(sig))

    def test_truncated_signature_rejected(self, keypair):
        sig = sign(keypair.private, "msg")
        with pytest.raises(SignatureError):
            verify(keypair.public, "msg", sig[:-1])

    def test_is_valid_boolean_form(self, keypair):
        sig = sign(keypair.private, "msg")
        assert is_valid(keypair.public, "msg", sig)
        assert not is_valid(keypair.public, "other", sig)

    @settings(max_examples=20)
    @given(st.text(max_size=30))
    def test_arbitrary_messages_sign(self, keypair, message):
        verify(keypair.public, message, sign(keypair.private, message))
