"""End-to-end sanity at production key sizes (1024-bit RSA).

The suite defaults to 512-bit keys for sweep speed; this battery proves
the whole stack is key-size independent by running a representative
end-to-end flow at 1024 bits.
"""

import pytest

from repro import CloudMonatt, SecurityProperty
from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import generate_keypair
from repro.crypto.signatures import sign, verify


@pytest.fixture(scope="module")
def cloud_1024():
    return CloudMonatt(num_servers=1, seed=99, key_bits=1024)


class TestFullKeySize:
    def test_1024_bit_signature_roundtrip(self):
        keys = generate_keypair(HmacDrbg(123), bits=1024)
        assert keys.public.bits == 1024
        verify(keys.public, {"m": 1}, sign(keys.private, {"m": 1}))

    def test_launch_and_attest_at_1024_bits(self, cloud_1024):
        alice = cloud_1024.register_customer("alice")
        vm = alice.launch_vm(
            "small", "cirros",
            properties=[SecurityProperty.STARTUP_INTEGRITY,
                        SecurityProperty.RUNTIME_INTEGRITY],
        )
        assert vm.accepted
        assert vm.report.healthy
        result = alice.attest(vm.vid, SecurityProperty.RUNTIME_INTEGRITY)
        assert result.report.healthy
