"""Tests for anti-co-location (dedicated-host) placement."""

import pytest

from repro import CloudMonatt, SecurityProperty
from repro.common.errors import PlacementError


@pytest.fixture()
def cloud():
    return CloudMonatt(num_servers=2, seed=75)


class TestDedicatedPlacement:
    def test_other_customers_cannot_join_a_dedicated_server(self, cloud):
        alice = cloud.register_customer("alice")
        mallory = cloud.register_customer("mallory")
        dedicated = alice.launch_vm("small", "ubuntu", dedicated=True)
        dedicated_server = cloud.controller.database.vm(dedicated.vid).server
        # mallory's VMs are steered to the other server every time
        for _ in range(3):
            vm = mallory.launch_vm("small", "cirros")
            assert cloud.controller.database.vm(vm.vid).server != dedicated_server

    def test_dedicated_vm_avoids_occupied_servers(self, cloud):
        mallory = cloud.register_customer("mallory")
        alice = cloud.register_customer("alice")
        occupied = {
            cloud.controller.database.vm(mallory.launch_vm("small", "cirros").vid).server
            for _ in range(2)
        }
        assert len(occupied) == 2  # both servers host mallory now
        with pytest.raises(PlacementError):
            alice.launch_vm("small", "ubuntu", dedicated=True)

    def test_same_customer_may_share_their_dedicated_server(self, cloud):
        alice = cloud.register_customer("alice")
        first = alice.launch_vm("small", "ubuntu", dedicated=True)
        server = cloud.controller.database.vm(first.vid).server
        # fill the other server so alice's next VM must co-locate
        bob = cloud.register_customer("bob")
        other = [s for s in cloud.servers if s != server][0]
        for _ in range(4):
            bob.launch_vm("large", "cirros", force_server=str(other))
        second = alice.launch_vm("small", "cirros")
        assert cloud.controller.database.vm(second.vid).server == server

    def test_dedicated_defeats_the_covert_channel_setup(self):
        """The co-residence precondition of the §4.4 attack is removed:
        the attacker's receiver cannot land on the victim's server."""
        cloud = CloudMonatt(num_servers=2, num_pcpus=1, seed=76)
        alice = cloud.register_customer("alice")
        mallory = cloud.register_customer("mallory")
        victim = alice.launch_vm(
            "small", "ubuntu",
            properties=[SecurityProperty.COVERT_CHANNEL_FREEDOM,
                        SecurityProperty.STARTUP_INTEGRITY],
            dedicated=True,
        )
        victim_server = cloud.controller.database.vm(victim.vid).server
        receiver = mallory.launch_vm(
            "small", "cirros", workload={"name": "cpu_bound"}
        )
        assert cloud.controller.database.vm(receiver.vid).server != victim_server

    def test_dedicated_migration_respects_anti_colocation(self, cloud):
        """A dedicated VM can only migrate to an unshared server."""
        from repro.controller.response import ResponseAction

        alice = cloud.register_customer("alice")
        mallory = cloud.register_customer("mallory")
        dedicated = alice.launch_vm("small", "ubuntu", dedicated=True)
        source = cloud.controller.database.vm(dedicated.vid).server
        other = [s for s in cloud.servers if s != source][0]
        mallory.launch_vm("small", "cirros", force_server=str(other))
        # no eligible destination: migration terminates the VM (§5.3)
        with pytest.raises(PlacementError):
            cloud.controller.response.migrate(dedicated.vid)
