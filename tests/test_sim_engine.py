"""Tests for the discrete-event engine."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import StateError
from repro.sim.engine import Engine


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        fired = []
        engine.schedule(20.0, fired.append, "b")
        engine.schedule(10.0, fired.append, "a")
        engine.schedule(30.0, fired.append, "c")
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        engine = Engine()
        fired = []
        for tag in range(5):
            engine.schedule(10.0, fired.append, tag)
        engine.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_now_advances_to_event_time(self):
        engine = Engine()
        seen = []
        engine.schedule(15.0, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [15.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(StateError):
            Engine().schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        engine = Engine()
        engine.schedule(5.0, lambda: None)
        engine.run()
        seen = []
        engine.schedule_at(12.0, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [12.0]

    def test_nested_scheduling(self):
        engine = Engine()
        fired = []

        def outer():
            fired.append(("outer", engine.now))
            engine.schedule(5.0, inner)

        def inner():
            fired.append(("inner", engine.now))

        engine.schedule(10.0, outer)
        engine.run()
        assert fired == [("outer", 10.0), ("inner", 15.0)]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = Engine()
        fired = []
        handle = engine.schedule(10.0, fired.append, "x")
        engine.cancel(handle)
        engine.run()
        assert fired == []
        assert handle.cancelled

    def test_double_cancel_is_noop(self):
        engine = Engine()
        handle = engine.schedule(10.0, lambda: None)
        engine.cancel(handle)
        engine.cancel(handle)
        assert engine.run() == 0

    def test_pending_excludes_cancelled(self):
        engine = Engine()
        keep = engine.schedule(10.0, lambda: None)
        drop = engine.schedule(20.0, lambda: None)
        engine.cancel(drop)
        assert engine.pending() == 1
        assert keep.time == 10.0


class TestRunUntil:
    def test_stops_at_horizon(self):
        engine = Engine()
        fired = []
        engine.schedule(10.0, fired.append, "in")
        engine.schedule(50.0, fired.append, "out")
        engine.run_until(30.0)
        assert fired == ["in"]
        assert engine.now == 30.0

    def test_horizon_event_inclusive(self):
        engine = Engine()
        fired = []
        engine.schedule(30.0, fired.append, "edge")
        engine.run_until(30.0)
        assert fired == ["edge"]

    def test_now_set_even_when_queue_empty(self):
        engine = Engine()
        engine.run_until(100.0)
        assert engine.now == 100.0

    def test_past_horizon_rejected(self):
        engine = Engine()
        engine.run_until(10.0)
        with pytest.raises(StateError):
            engine.run_until(5.0)

    def test_runaway_loop_detected(self):
        engine = Engine()

        def respawn():
            engine.schedule(0.0, respawn)

        engine.schedule(0.0, respawn)
        with pytest.raises(StateError):
            engine.run(max_events=100)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=30))
    def test_arbitrary_delays_fire_sorted(self, delays):
        engine = Engine()
        fired = []
        for delay in delays:
            engine.schedule(delay, lambda d=delay: fired.append(d))
        engine.run()
        assert fired == sorted(fired)
