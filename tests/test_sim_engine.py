"""Tests for the discrete-event engine."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import StateError
from repro.sim.engine import Engine


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        fired = []
        engine.schedule(20.0, fired.append, "b")
        engine.schedule(10.0, fired.append, "a")
        engine.schedule(30.0, fired.append, "c")
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        engine = Engine()
        fired = []
        for tag in range(5):
            engine.schedule(10.0, fired.append, tag)
        engine.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_now_advances_to_event_time(self):
        engine = Engine()
        seen = []
        engine.schedule(15.0, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [15.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(StateError):
            Engine().schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        engine = Engine()
        engine.schedule(5.0, lambda: None)
        engine.run()
        seen = []
        engine.schedule_at(12.0, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [12.0]

    def test_nested_scheduling(self):
        engine = Engine()
        fired = []

        def outer():
            fired.append(("outer", engine.now))
            engine.schedule(5.0, inner)

        def inner():
            fired.append(("inner", engine.now))

        engine.schedule(10.0, outer)
        engine.run()
        assert fired == [("outer", 10.0), ("inner", 15.0)]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = Engine()
        fired = []
        handle = engine.schedule(10.0, fired.append, "x")
        engine.cancel(handle)
        engine.run()
        assert fired == []
        assert handle.cancelled

    def test_double_cancel_is_noop(self):
        engine = Engine()
        handle = engine.schedule(10.0, lambda: None)
        engine.cancel(handle)
        engine.cancel(handle)
        assert engine.run() == 0

    def test_pending_excludes_cancelled(self):
        engine = Engine()
        keep = engine.schedule(10.0, lambda: None)
        drop = engine.schedule(20.0, lambda: None)
        engine.cancel(drop)
        assert engine.pending() == 1
        assert keep.time == 10.0


class TestRunUntil:
    def test_stops_at_horizon(self):
        engine = Engine()
        fired = []
        engine.schedule(10.0, fired.append, "in")
        engine.schedule(50.0, fired.append, "out")
        engine.run_until(30.0)
        assert fired == ["in"]
        assert engine.now == 30.0

    def test_horizon_event_inclusive(self):
        engine = Engine()
        fired = []
        engine.schedule(30.0, fired.append, "edge")
        engine.run_until(30.0)
        assert fired == ["edge"]

    def test_now_set_even_when_queue_empty(self):
        engine = Engine()
        engine.run_until(100.0)
        assert engine.now == 100.0

    def test_past_horizon_rejected(self):
        engine = Engine()
        engine.run_until(10.0)
        with pytest.raises(StateError):
            engine.run_until(5.0)

    def test_runaway_loop_detected(self):
        engine = Engine()

        def respawn():
            engine.schedule(0.0, respawn)

        engine.schedule(0.0, respawn)
        with pytest.raises(StateError):
            engine.run(max_events=100)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=30))
    def test_arbitrary_delays_fire_sorted(self, delays):
        engine = Engine()
        fired = []
        for delay in delays:
            engine.schedule(delay, lambda d=delay: fired.append(d))
        engine.run()
        assert fired == sorted(fired)


class TestQueueAccounting:
    def test_pending_count_excludes_cancelled(self):
        engine = Engine()
        handles = [engine.schedule(float(i + 1), lambda: None) for i in range(10)]
        assert engine.pending_count == 10
        for handle in handles[:4]:
            engine.cancel(handle)
        assert engine.pending_count == 6
        assert engine.pending() == 6

    def test_double_cancel_counts_once(self):
        engine = Engine()
        handle = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        engine.cancel(handle)
        engine.cancel(handle)
        assert engine.pending_count == 1

    def test_cancel_after_fire_does_not_corrupt_count(self):
        engine = Engine()
        handle = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        engine.run_until(1.0)
        engine.cancel(handle)  # late cancel of an already-fired event
        assert engine.pending_count == 1
        engine.run()
        assert engine.pending_count == 0

    def test_events_fired_counts_only_executed(self):
        engine = Engine()
        keep = [engine.schedule(float(i + 1), lambda: None) for i in range(5)]
        victim = engine.schedule(6.0, lambda: None)
        engine.cancel(victim)
        engine.run()
        assert engine.events_fired == 5
        assert keep[0].time == 1.0

    def test_heap_compaction_under_cancel_heavy_load(self):
        engine = Engine()
        handles = [engine.schedule(float(i + 1), lambda: None) for i in range(100)]
        for handle in handles[:60]:
            engine.cancel(handle)
        # once cancelled entries outnumbered live ones the heap was
        # physically compacted, so most dead entries are gone (cancels
        # arriving after the rebuild stay lazy until the next trigger)
        assert len(engine._queue) < 60
        assert engine.pending_count == 40
        fired = engine.run()
        assert fired == 40

    def test_small_queues_skip_compaction(self):
        engine = Engine()
        handles = [engine.schedule(float(i + 1), lambda: None) for i in range(10)]
        for handle in handles[:8]:
            engine.cancel(handle)
        # below the compaction floor the dead entries stay (lazy skip)
        assert len(engine._queue) == 10
        assert engine.pending_count == 2
        assert engine.run() == 2

    def test_cancelled_events_never_fire_after_compaction(self):
        engine = Engine()
        fired = []
        victims = [
            engine.schedule(float(i + 1), fired.append, i) for i in range(80)
        ]
        survivors = [
            engine.schedule(float(100 + i), fired.append, 100 + i)
            for i in range(20)
        ]
        for handle in victims:
            engine.cancel(handle)
        engine.run()
        assert fired == [100 + i for i in range(20)]
        assert all(handle.cancelled for handle in victims)
        assert not any(handle.cancelled for handle in survivors)


class TestFlattenedLoopEdgeCases:
    """Edge cases for the flattened run loops and in-place compaction."""

    def test_compact_during_run_keeps_loop_alias_valid(self):
        # the run loop holds a local alias to the queue list; a callback
        # that cancels enough events to trigger _compact must not strand
        # the loop on a stale list object
        engine = Engine()
        fired = []
        victims = [
            engine.schedule(50.0 + i, fired.append, i) for i in range(128)
        ]
        survivors = [200.0 + i for i in range(4)]
        for t in survivors:
            engine.schedule(t, fired.append, t)

        def mass_cancel():
            for handle in victims:
                engine.cancel(handle)
            # compaction ran at least once mid-run (queues below 64
            # entries intentionally skip it)
            assert len(engine._queue) < len(victims)

        engine.schedule(1.0, mass_cancel)
        engine.run()
        assert fired == survivors
        assert engine.pending_count == 0

    def test_compact_during_run_until_keeps_loop_alias_valid(self):
        engine = Engine()
        fired = []
        victims = [
            engine.schedule(50.0 + i, fired.append, i) for i in range(128)
        ]
        engine.schedule(1.0, lambda: [engine.cancel(h) for h in victims])
        engine.schedule(300.0, fired.append, "late")
        engine.run_until(200.0)
        assert fired == []
        assert engine.pending_count == 1
        engine.run_until(300.0)
        assert fired == ["late"]

    def test_schedule_at_ties_fire_in_schedule_order(self):
        engine = Engine()
        fired = []
        engine.schedule(5.0, fired.append, "delay-first")
        engine.schedule_at(5.0, fired.append, "absolute-second")
        engine.schedule(5.0, fired.append, "delay-third")
        engine.run()
        assert fired == ["delay-first", "absolute-second", "delay-third"]

    def test_run_max_events_exact_exhaustion(self):
        # exactly max_events in the queue: the guard must not trip when
        # the budget is spent on the final event
        engine = Engine()
        fired = []
        for i in range(10):
            engine.schedule(float(i), fired.append, i)
        with pytest.raises(StateError):
            engine.run(max_events=10)
        assert fired == list(range(10))

        engine2 = Engine()
        for i in range(9):
            engine2.schedule(float(i), fired.append, i)
        assert engine2.run(max_events=10) == 9

    def test_pending_count_under_interleaved_cancel_and_fire(self):
        engine = Engine()
        observed = []
        handles = {}

        def fire_and_cancel(i):
            # cancel the event two slots ahead, then record the count
            target = handles.get(i + 2)
            if target is not None:
                engine.cancel(target)
            observed.append(engine.pending_count)

        for i in range(10):
            handles[i] = engine.schedule(float(i), fire_and_cancel, i)
        engine.run()
        # events 0..9 scheduled; each firing cancels i+2, so events fire
        # at i = 0, 1, 4, 5, 8, 9 and the count never goes negative
        assert observed[-1] == 0
        assert all(count >= 0 for count in observed)
        fired_indices = [i for i in range(10) if i not in (2, 3, 6, 7)]
        assert len(observed) == len(fired_indices)

    def test_step_interleaved_with_cancel_keeps_accounting(self):
        engine = Engine()
        fired = []
        handles = [engine.schedule(float(i), fired.append, i) for i in range(6)]
        assert engine.step()
        engine.cancel(handles[1])
        engine.cancel(handles[2])
        assert engine.pending_count == 3
        assert engine.step()  # skips 1 and 2, fires 3
        assert fired == [0, 3]
        assert engine.pending_count == 2
        while engine.step():
            pass
        assert fired == [0, 3, 4, 5]
        assert engine.pending_count == 0
