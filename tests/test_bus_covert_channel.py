"""Tests for the memory-bus covert channel and its monitoring.

The bus channel is the second covert-channel source (§4.4.3): it works
cross-core and keeps CPU usage uniform, so the scheduler-interval
monitor alone misses it — the bus-lock monitor is what catches it.
"""

import pytest

from repro import CloudMonatt, SecurityProperty
from repro.attacks import BusCovertChannelSender
from repro.attacks.covert_channel import bit_accuracy
from repro.common.identifiers import VmId
from repro.common.rng import DeterministicRng
from repro.monitors import BusLatencyProbe, BusLockHistogram, RunIntervalHistogram
from repro.monitors.monitor_module import (
    MEAS_BUS_LOCK_HISTOGRAM,
    MEAS_CPU_INTERVAL_HISTOGRAM,
)
from repro.properties import CovertChannelInterpreter
from repro.properties.covert_channel import RandomSourceSelector
from repro.xen import CpuBoundWorkload, Hypervisor, MemoryStreamingWorkload

BITS = [1, 0, 1, 1, 0, 0, 1, 0]


def run_sender(workload, duration_ms=5000.0, corunner=None):
    """Sender on pCPU 1, optional co-runner on pCPU 0; both monitors on."""
    hv = Hypervisor(num_pcpus=2)
    intervals = RunIntervalHistogram()
    bus = BusLockHistogram()
    hv.add_monitor(intervals)
    hv.add_monitor(bus)
    hv.create_domain(VmId("sender"), workload, pcpus=[1])
    if corunner is not None:
        hv.create_domain(VmId("other"), corunner, pcpus=[0])
    hv.run_for(duration_ms)
    return hv, intervals, bus


class TestBusChannelTransmission:
    def test_cross_core_reception(self):
        """A receiver on another core decodes the sender's bits."""
        hv = Hypervisor(num_pcpus=2)
        sender = BusCovertChannelSender(BITS, symbol_ms=10.0, high_rate=20.0)
        hv.create_domain(VmId("sender"), sender, pcpus=[1])
        hv.create_domain(VmId("receiver"), CpuBoundWorkload(), pcpus=[0])
        probe = BusLatencyProbe(hv, VmId("receiver"), sample_ms=1.0)
        probe.arm(2000.0)
        hv.run_for(2100.0)
        decoded = probe.decode(threshold_factor=1.3, symbol_ms=10.0)
        assert len(decoded) >= 10 * len(BITS)
        best = 0.0
        for phase in range(len(BITS)):
            pattern = BITS[phase:] + BITS[:phase]
            sent = (pattern * (len(decoded) // len(pattern) + 1))[: len(decoded)]
            best = max(best, bit_accuracy(sent, decoded))
        assert best > 0.9

    def test_sender_bandwidth(self):
        sender = BusCovertChannelSender(BITS, symbol_ms=10.0)
        assert sender.bandwidth_bps == pytest.approx(100.0, rel=0.01)

    def test_sender_validation(self):
        with pytest.raises(ValueError):
            BusCovertChannelSender([])
        with pytest.raises(ValueError):
            BusCovertChannelSender([1], symbol_ms=0.0)

    def test_non_repeating_sender_terminates(self):
        hv = Hypervisor(num_pcpus=1)
        sender = BusCovertChannelSender([1, 0], repeat=False)
        dom = hv.create_domain(VmId("sender"), sender)
        hv.run_for(500.0)
        assert not dom.live
        assert sender.bits_sent == 2


class TestBusMonitoring:
    def test_bus_sender_evades_cpu_interval_monitor(self):
        """The point of the channel: uniform CPU usage, unimodal intervals."""
        _, intervals, bus = run_sender(BusCovertChannelSender(BITS))
        interpreter = CovertChannelInterpreter()
        cpu_only = interpreter.interpret(
            VmId("sender"),
            {MEAS_CPU_INTERVAL_HISTOGRAM: intervals.histogram(VmId("sender"))},
        )
        assert cpu_only.healthy, "CPU-interval monitoring alone must miss it"

    def test_bus_monitor_catches_the_sender(self):
        _, intervals, bus = run_sender(BusCovertChannelSender(BITS))
        interpreter = CovertChannelInterpreter()
        both = interpreter.interpret(
            VmId("sender"),
            {
                MEAS_CPU_INTERVAL_HISTOGRAM: intervals.histogram(VmId("sender")),
                MEAS_BUS_LOCK_HISTOGRAM: bus.histogram(VmId("sender")),
            },
        )
        assert not both.healthy
        assert both.details["bus_covert"]
        assert "memory-bus" in both.explanation

    def test_benign_streaming_not_flagged(self):
        """A steady-rate memory-heavy service is unimodal: benign."""
        _, intervals, bus = run_sender(MemoryStreamingWorkload(lock_rate_per_ms=8.0))
        interpreter = CovertChannelInterpreter()
        report = interpreter.interpret(
            VmId("sender"),
            {
                MEAS_CPU_INTERVAL_HISTOGRAM: intervals.histogram(VmId("sender")),
                MEAS_BUS_LOCK_HISTOGRAM: bus.histogram(VmId("sender")),
            },
        )
        assert report.healthy

    def test_cpu_bound_vm_not_flagged_by_bus_monitor(self):
        _, intervals, bus = run_sender(CpuBoundWorkload())
        report = CovertChannelInterpreter().interpret(
            VmId("sender"),
            {
                MEAS_CPU_INTERVAL_HISTOGRAM: intervals.histogram(VmId("sender")),
                MEAS_BUS_LOCK_HISTOGRAM: bus.histogram(VmId("sender")),
            },
        )
        assert report.healthy

    def test_histogram_weights_are_durations(self):
        _, _, bus = run_sender(MemoryStreamingWorkload(lock_rate_per_ms=8.0),
                               duration_ms=1000.0)
        histogram = bus.histogram(VmId("sender"))
        # nearly all run time sits in the rate-8 bin
        assert histogram[8] > 0.9 * sum(histogram)

    def test_reset(self):
        _, _, bus = run_sender(MemoryStreamingWorkload())
        bus.reset(VmId("sender"))
        assert sum(bus.histogram(VmId("sender"))) == 0.0

    def test_bad_bin_count_rejected(self):
        with pytest.raises(ValueError):
            BusLockHistogram(num_bins=1)


class TestRandomSourceSwitching:
    def test_selector_uses_both_sources(self):
        selector = RandomSourceSelector(DeterministicRng(5))
        chosen = {selector.next_measurements() for _ in range(30)}
        assert chosen == set(RandomSourceSelector.SOURCES)
        assert len(selector.history) == 30

    def test_randomized_monitoring_eventually_catches_bus_sender(self):
        """Per-round random source selection (§4.4.3): the bus sender is
        missed on CPU-interval rounds but caught on bus rounds."""
        selector = RandomSourceSelector(DeterministicRng(7))
        interpreter = CovertChannelInterpreter()
        verdicts = []
        for round_index in range(6):
            _, intervals, bus = run_sender(
                BusCovertChannelSender(BITS), duration_ms=3000.0
            )
            sources = selector.next_measurements()
            measurements = {}
            if MEAS_CPU_INTERVAL_HISTOGRAM in sources:
                measurements[MEAS_CPU_INTERVAL_HISTOGRAM] = intervals.histogram(
                    VmId("sender")
                )
            if MEAS_BUS_LOCK_HISTOGRAM in sources:
                measurements[MEAS_BUS_LOCK_HISTOGRAM] = bus.histogram(VmId("sender"))
            verdicts.append(interpreter.interpret(VmId("sender"), measurements))
        assert any(not v.healthy for v in verdicts)


class TestFullStackBusChannel:
    def test_end_to_end_detection(self):
        cloud = CloudMonatt(num_servers=1, num_pcpus=2, seed=44)
        alice = cloud.register_customer("alice")
        sender = alice.launch_vm(
            "small", "ubuntu",
            properties=[SecurityProperty.COVERT_CHANNEL_FREEDOM,
                        SecurityProperty.STARTUP_INTEGRITY],
            workload={"name": "bus_covert_channel_sender"},
            pins=[1],
        )
        alice.launch_vm(
            "small", "ubuntu", workload={"name": "cpu_bound"}, pins=[0]
        )
        result = alice.attest(sender.vid, SecurityProperty.COVERT_CHANNEL_FREEDOM)
        assert not result.report.healthy
        assert result.report.details["bus_covert"]

    def test_end_to_end_benign_streaming(self):
        cloud = CloudMonatt(num_servers=1, num_pcpus=2, seed=45)
        alice = cloud.register_customer("alice")
        vm = alice.launch_vm(
            "small", "ubuntu",
            properties=[SecurityProperty.COVERT_CHANNEL_FREEDOM],
            workload={"name": "memory_streaming"},
        )
        result = alice.attest(vm.vid, SecurityProperty.COVERT_CHANNEL_FREEDOM)
        assert result.report.healthy
