"""The fleet attestation pipeline must be fast *and* invisible.

The pipeline (request coalescing, batched appraisal, overlapped
protocol rounds) is a pure performance layer: every property report it
produces must be byte-identical to the one the serial path produces for
the same VM under the same seed, and two same-seed concurrent runs must
produce byte-identical reports and telemetry — with and without
injected network faults. These tests pin those promises down, plus the
building blocks: the Merkle multi-quote, round futures, host-side
measurement coalescing, and the key-pool exhaustion signal.
"""

from __future__ import annotations

import pytest

from repro import CloudMonatt, SecurityProperty
from repro.common.errors import StateError
from repro.crypto.drbg import HmacDrbg
from repro.crypto.encoding import encode
from repro.crypto.hashing import sha256
from repro.crypto.keypool import KeyPool
from repro.network.faults import FaultInjector, FaultSpec
from repro.protocol.quotes import merkle_root
from repro.resilience import LEG_CONTROLLER_AS
from repro.sim.rounds import RoundFuture, gather_results, resolve_each
from repro.telemetry import Telemetry

KEY_BITS = 512
SEED = 1123


# ----------------------------------------------------------------------
# building blocks
# ----------------------------------------------------------------------


class TestMerkleRoot:
    def test_empty_is_stable_and_distinct(self):
        assert merkle_root([]) == merkle_root([])
        assert merkle_root([]) != merkle_root([b"x"])

    def test_single_leaf_is_domain_separated(self):
        # a single-leaf root is NOT the leaf itself, nor its bare hash:
        # leaves pass through the "merkle-leaf" domain
        leaf = b"q" * 32
        assert merkle_root([leaf]) == sha256(["merkle-leaf", leaf])
        assert merkle_root([leaf]) != leaf
        assert merkle_root([leaf]) != sha256([leaf])

    def test_two_leaves_manual_construction(self):
        a, b = b"a" * 32, b"b" * 32
        expected = sha256([
            "merkle-node",
            sha256(["merkle-leaf", a]),
            sha256(["merkle-leaf", b]),
        ])
        assert merkle_root([a, b]) == expected

    def test_order_sensitive(self):
        a, b = b"a" * 32, b"b" * 32
        assert merkle_root([a, b]) != merkle_root([b, a])

    def test_odd_level_promotes_last_leaf(self):
        a, b, c = b"a" * 32, b"b" * 32, b"c" * 32
        node_ab = sha256([
            "merkle-node",
            sha256(["merkle-leaf", a]),
            sha256(["merkle-leaf", b]),
        ])
        expected = sha256(["merkle-node", node_ab, sha256(["merkle-leaf", c])])
        assert merkle_root([a, b, c]) == expected


class TestRoundFuture:
    def test_result_and_done(self):
        future: RoundFuture[int] = RoundFuture()
        assert not future.done
        with pytest.raises(StateError):
            future.result()
        future.set_result(7)
        assert future.done
        assert future.result() == 7
        assert future.exception() is None

    def test_exception_propagates(self):
        future: RoundFuture[int] = RoundFuture()
        future.set_exception(ValueError("boom"))
        with pytest.raises(ValueError):
            future.result()

    def test_resolves_exactly_once(self):
        future: RoundFuture[int] = RoundFuture()
        future.set_result(1)
        with pytest.raises(StateError):
            future.set_result(2)
        with pytest.raises(StateError):
            future.set_exception(ValueError())

    def test_callbacks_before_and_after_resolution(self):
        order: list[str] = []
        future: RoundFuture[int] = RoundFuture()
        future.add_done_callback(lambda f: order.append("early"))
        future.set_result(1)
        future.add_done_callback(lambda f: order.append("late"))
        assert order == ["early", "late"]

    def test_gather_and_resolve_each(self):
        futures = [RoundFuture() for _ in range(3)]
        resolve_each(futures, [10, 20, 30])
        assert gather_results(futures) == [10, 20, 30]
        with pytest.raises(StateError):
            resolve_each([RoundFuture()], [1, 2])


class TestKeyPoolExhaustion:
    def test_exhaustion_counter_fires_only_after_prefill(self):
        telemetry = Telemetry(enabled=True)
        pool = KeyPool(HmacDrbg(SEED, "pool"), KEY_BITS, telemetry=telemetry)
        pool.take()  # never prefilled: on-demand keygen is the plan
        exhausted = telemetry.metrics.counter("crypto.keypool.exhausted")
        assert exhausted.total() == 0
        pool.prefill(1)
        pool.take()
        pool.take()  # drained a prewarmed pool: the estimate was short
        assert exhausted.total() == 1


# ----------------------------------------------------------------------
# full stack: fleet path vs serial path
# ----------------------------------------------------------------------


def _build_cloud(num_vms: int, prop=SecurityProperty.RUNTIME_INTEGRITY,
                 telemetry_enabled: bool = False, num_servers: int = 2):
    cloud = CloudMonatt(
        num_servers=num_servers,
        num_pcpus=(num_vms // num_servers) + 2,
        seed=SEED,
        key_bits=KEY_BITS,
        telemetry_enabled=telemetry_enabled,
    )
    customer = cloud.register_customer("alice")
    vids = [
        customer.launch_vm(
            "small", "ubuntu", properties=[prop], workload={"name": "idle"}
        ).vid
        for _ in range(num_vms)
    ]
    return cloud, customer, vids


class TestFleetMatchesSerial:
    def test_reports_byte_identical_same_cloud(self):
        cloud, customer, vids = _build_cloud(4)
        prop = SecurityProperty.RUNTIME_INTEGRITY
        serial = [customer.attest(vid, prop) for vid in vids]
        fleet = customer.attest_fleet([(vid, prop) for vid in vids])
        assert [encode(r.report.to_dict()) for r in fleet] == \
               [encode(r.report.to_dict()) for r in serial]
        assert all(r.report.healthy for r in fleet)

    def test_reports_byte_identical_across_same_seed_clouds(self):
        # stronger: a cloud that ONLY ever used the serial path and a
        # same-seed cloud that ONLY used the pipeline agree on every
        # report byte (batching changes when work happens, not what the
        # appraisal says)
        prop = SecurityProperty.RUNTIME_INTEGRITY
        _, serial_customer, vids = _build_cloud(4)
        serial = [serial_customer.attest(vid, prop) for vid in vids]
        _, fleet_customer, fleet_vids = _build_cloud(4)
        assert fleet_vids == vids
        fleet = fleet_customer.attest_fleet([(vid, prop) for vid in vids])
        assert [encode(r.report.to_dict()) for r in fleet] == \
               [encode(r.report.to_dict()) for r in serial]

    def test_submission_order_does_not_matter(self):
        cloud, customer, vids = _build_cloud(4)
        prop = SecurityProperty.RUNTIME_INTEGRITY
        forward = customer.attest_fleet([(vid, prop) for vid in vids])
        backward = customer.attest_fleet(
            [(vid, prop) for vid in reversed(vids)]
        )
        # each result aligns with its own request order...
        assert [encode(r.report.to_dict()) for r in backward] == \
               list(reversed([encode(r.report.to_dict()) for r in forward]))

    def test_coalescing_shares_vm_independent_measurements(self):
        # STARTUP_INTEGRITY includes the platform-integrity measurement,
        # which is a property of the host, not the VM: a batch of N
        # co-hosted VMs measures it once and coalesces N-1 requests
        cloud, customer, vids = _build_cloud(
            4, prop=SecurityProperty.STARTUP_INTEGRITY, telemetry_enabled=True
        )
        results = customer.attest_fleet(
            [(vid, SecurityProperty.STARTUP_INTEGRITY) for vid in vids]
        )
        assert all(r.report.healthy for r in results)
        hits = cloud.telemetry.metrics.counter("pipeline.coalesce.hits")
        # 4 VMs on 2 servers: one shared platform pass per server
        assert hits.total() >= 2

    def test_pipeline_telemetry_names(self):
        cloud, customer, vids = _build_cloud(4, telemetry_enabled=True)
        prop = SecurityProperty.RUNTIME_INTEGRITY
        customer.attest_fleet([(vid, prop) for vid in vids])
        metrics = cloud.telemetry.metrics
        assert metrics.counter("pipeline.rounds").total() == 4
        assert metrics.counter("pipeline.batch.fallbacks").total() == 0
        sizes = metrics.histogram("pipeline.batch.size").series()
        assert sizes, "batched appraisal never recorded a batch size"
        assert cloud.controller.pipeline.depth == 0


class TestPipelineSubmission:
    def test_submit_and_flush_resolve_futures(self):
        cloud = CloudMonatt(
            num_servers=2, seed=SEED, key_bits=KEY_BITS,
            telemetry_enabled=True,
        )
        customer = cloud.register_customer("alice")
        props = [
            SecurityProperty.RUNTIME_INTEGRITY,
            SecurityProperty.STARTUP_INTEGRITY,
            SecurityProperty.RUNTIME_INTEGRITY,
        ]
        vids = [
            customer.launch_vm(
                "small", "ubuntu",
                properties=[SecurityProperty.RUNTIME_INTEGRITY,
                            SecurityProperty.STARTUP_INTEGRITY],
                workload={"name": "idle"},
            ).vid
            for _ in props
        ]
        pipeline = cloud.controller.pipeline
        futures = [
            pipeline.submit(vid, prop) for vid, prop in zip(vids, props)
        ]
        assert pipeline.depth == 3
        assert not any(f.done for f in futures)
        pipeline.flush()
        assert pipeline.depth == 0
        outcomes = gather_results(futures)
        # each future aligns with its own submission, across the sorted
        # and property-grouped batch
        assert [o.report.prop for o in outcomes] == props
        assert all(o.report.healthy for o in outcomes)


# ----------------------------------------------------------------------
# determinism under concurrency (with and without faults)
# ----------------------------------------------------------------------

NUM_VMS = 8
WAVES = 4  # 8 VMs x 4 waves = 32 interleaved rounds


def _run_concurrent(fault_plan=None):
    """32 pipelined rounds; returns (encoded reports, telemetry JSON)."""
    cloud, customer, vids = _build_cloud(NUM_VMS, telemetry_enabled=True)
    if fault_plan is not None:
        cloud.network.install_fault_injector(
            FaultInjector(cloud.rng.child("test-faults"), fault_plan)
        )
    prop = SecurityProperty.RUNTIME_INTEGRITY
    reports = []
    for _ in range(WAVES):
        results = customer.attest_fleet([(vid, prop) for vid in vids])
        reports.extend(encode(r.report.to_dict()) for r in results)
    return reports, cloud.telemetry.metrics.snapshot_json(), cloud


class TestDeterminismUnderConcurrency:
    def test_same_seed_same_bytes(self):
        first_reports, first_metrics, _ = _run_concurrent()
        second_reports, second_metrics, _ = _run_concurrent()
        assert len(first_reports) == NUM_VMS * WAVES
        assert first_reports == second_reports
        assert first_metrics == second_metrics

    def test_same_seed_same_bytes_under_faults(self):
        plan = {LEG_CONTROLLER_AS: FaultSpec(drop=1.0, limit=1)}
        first_reports, first_metrics, first_cloud = _run_concurrent(plan)
        second_reports, second_metrics, _ = _run_concurrent(plan)
        assert first_reports == second_reports
        assert first_metrics == second_metrics
        # the dropped batch leg actually fired and fell back to the
        # serial per-round path
        fallbacks = first_cloud.telemetry.metrics.counter(
            "pipeline.batch.fallbacks"
        )
        assert fallbacks.total() >= 1

    def test_faulted_reports_match_clean_reports(self):
        # the serial fallback replays each member round faithfully: the
        # reports a faulted run produces are byte-identical to a clean
        # run's (telemetry differs — the retries are visible — but the
        # appraisal never does)
        clean_reports, _, _ = _run_concurrent()
        plan = {LEG_CONTROLLER_AS: FaultSpec(drop=1.0, limit=1)}
        faulted_reports, _, _ = _run_concurrent(plan)
        assert faulted_reports == clean_reports


# ----------------------------------------------------------------------
# key-pool prewarm for fleet bursts
# ----------------------------------------------------------------------


class TestPrewarmForFleet:
    def test_prewarm_then_exhaust_raises_alert(self):
        cloud, customer, vids = _build_cloud(3, telemetry_enabled=True)
        prop = SecurityProperty.RUNTIME_INTEGRITY
        assert cloud.prewarm_for_fleet(1) >= 1
        for vid in vids:  # serial rounds burn one session key each
            customer.attest(vid, prop)
        exhausted = cloud.telemetry.metrics.counter("crypto.keypool.exhausted")
        assert exhausted.total() >= 1
        assert any(
            alert.rule == "keypool_exhausted"
            for alert in cloud.observatory.alerts.alerts
        )

    def test_adequate_prewarm_never_alerts(self):
        cloud, customer, vids = _build_cloud(3, telemetry_enabled=True)
        prop = SecurityProperty.RUNTIME_INTEGRITY
        assert cloud.prewarm_for_fleet(len(vids) + 1) >= 1
        customer.attest_fleet([(vid, prop) for vid in vids])
        exhausted = cloud.telemetry.metrics.counter("crypto.keypool.exhausted")
        assert exhausted.total() == 0
        assert not any(
            alert.rule == "keypool_exhausted"
            for alert in cloud.observatory.alerts.alerts
        )
