"""Tests for the ProVerif model exporter."""

import pytest

from repro.verification import ProtocolVariant
from repro.verification.proverif_export import export_proverif, write_proverif


class TestExport:
    @pytest.fixture(scope="class")
    def source(self):
        return export_proverif()

    def test_contains_equational_theory(self, source):
        for primitive in ("adec(aenc(m, pk(k)), k) = m",
                          "sdec(senc(m, k), k) = m",
                          "checksign(sign(m, k), pk(k)) = m"):
            assert primitive in source

    def test_declares_every_longterm_secret(self, source):
        for secret in ("SKcust", "SKc", "SKa", "SKs", "SKpca"):
            assert f"free {secret}: skey [private]." in source

    def test_queries_cover_the_six_properties(self, source):
        # secrecy queries (1 and 2)
        for target in ("SKcust", "SKc", "SKa", "SKs", "P", "M", "R"):
            assert f"query attacker({target})." in source
        # authentication correspondences (4-6) and report integrity (3)
        assert source.count("inj-event") >= 8

    def test_four_entities_present(self, source):
        for process in ("let Customer", "let Controller",
                        "let AttestationServer", "let CloudServer"):
            assert process in source

    def test_session_attestation_key_is_fresh(self, source):
        assert "new ASKs: skey" in source
        assert "sign((pseudo, pk(ASKs)), SKpca)" in source

    def test_three_nonces(self, source):
        for nonce in ("new N1", "new N2", "new N3"):
            assert nonce in source

    def test_public_keys_published_to_attacker(self, source):
        assert "out(net, pk(SKcust))" in source

    def test_balanced_parentheses(self, source):
        assert source.count("(") == source.count(")")

    def test_only_standard_variant_exported(self):
        with pytest.raises(ValueError):
            export_proverif(ProtocolVariant.PLAINTEXT)

    def test_write_to_file(self, tmp_path):
        path = write_proverif(str(tmp_path / "cloudmonatt.pv"))
        with open(path, encoding="utf-8") as handle:
            assert "process" in handle.read()
