"""Tests for the IMA-style per-component appraiser."""

import hashlib

import pytest

from repro import CloudMonatt, SecurityProperty
from repro.attacks.image_tampering import tamper_platform
from repro.monitors.integrity_unit import SoftwareInventory
from repro.properties.ima import ImaAppraiser


def digests_of(inventory: SoftwareInventory):
    names = [name for name, _ in inventory.components]
    log = [hashlib.sha256(content).digest() for _, content in inventory.components]
    return names, log


class TestImaAppraiser:
    @pytest.fixture()
    def appraiser(self):
        appraiser = ImaAppraiser()
        appraiser.trust_inventory(SoftwareInventory.pristine_platform())
        return appraiser

    def test_pristine_log_all_ok(self, appraiser):
        names, log = digests_of(SoftwareInventory.pristine_platform())
        verdicts = appraiser.appraise(names, log)
        assert all(v.status == "ok" for v in verdicts)
        assert appraiser.violations(names, log) == []

    def test_modified_component_named(self, appraiser):
        tampered = tamper_platform(
            SoftwareInventory.pristine_platform(), component="dom0-linux-3.10"
        )
        names, log = digests_of(tampered)
        assert appraiser.violations(names, log) == ["dom0-linux-3.10"]

    def test_multiple_modifications_all_named(self, appraiser):
        tampered = tamper_platform(
            tamper_platform(SoftwareInventory.pristine_platform(),
                            component="xen-hypervisor-4.2"),
            component="oat-client",
        )
        names, log = digests_of(tampered)
        assert set(appraiser.violations(names, log)) == {
            "xen-hypervisor-4.2", "oat-client",
        }

    def test_unknown_component_flagged(self, appraiser):
        names = ["mystery-daemon"]
        log = [hashlib.sha256(b"whatever").digest()]
        verdicts = appraiser.appraise(names, log)
        assert verdicts[0].status == "unknown-component"

    def test_multiple_acceptable_versions(self, appraiser):
        patched = SoftwareInventory.pristine_platform().tampered(
            "oat-client", b"openattestation client v2 (patched)"
        )
        appraiser.trust_inventory(patched)  # second good version
        names, log = digests_of(patched)
        assert appraiser.violations(names, log) == []
        names, log = digests_of(SoftwareInventory.pristine_platform())
        assert appraiser.violations(names, log) == []

    def test_knows_component(self, appraiser):
        assert appraiser.knows_component("oat-client")
        assert not appraiser.knows_component("mystery-daemon")


class TestImaEndToEnd:
    def test_launch_rejection_names_the_component(self):
        """With IMA diagnostics, a failed startup attestation says which
        platform component was backdoored."""
        cloud = CloudMonatt(num_servers=1, seed=52)
        cloud.servers.clear()
        cloud.controller.database._servers.clear()
        tampered = tamper_platform(
            SoftwareInventory.pristine_platform(), component="xen-hypervisor-4.2"
        )
        cloud.add_server(platform_inventory=tampered, trust_platform=False)
        # the AS trusts the pristine inventory for IMA diagnostics
        cloud.attestation_server.interpreter.trust_platform(
            SoftwareInventory.pristine_platform()
        )
        alice = cloud.register_customer("alice")
        with pytest.raises(Exception):  # retried, then placement exhausted
            alice.launch_vm(
                "small", "cirros", properties=[SecurityProperty.STARTUP_INTEGRITY]
            )
        # the provenance trail names the backdoored component
        failed = next(
            r for r in cloud.controller.provenance
            if r.event == "platform_failed_retrying"
        )
        assert "xen-hypervisor-4.2" in failed.payload["reason"]
