"""The sharded control plane, end to end.

The promises pinned here, in order: a sharded plane's per-VM reports
(startup at launch, runtime on demand and in fleet batches) are
byte-identical to a single-controller deployment's — sharding is a
topology change, never an appraisal change; a 1-shard plane *is* the
single-controller path; the cross-shard fleet root is the Merkle root
over the per-shard signed batch roots in sorted shard-name order;
adding/removing shards mid-stream is deterministic (two same-seed
planes replay the identical rebalance) and moves only ring-adjacent
VMs after draining the sources' in-flight rounds; standing monitoring
policies are re-split across rebalances without losing coverage; and
the coordinator refuses cross-customer and stale-version policies the
same way a single controller would.
"""

from __future__ import annotations

import pytest

from repro import CloudMonatt, SecurityProperty
from repro.common.errors import PolicyError, StateError
from repro.common.identifiers import VmId
from repro.protocol.quotes import merkle_root
from repro.shard import ShardPlane

KEY_BITS = 512
SEED = 2029
RUNTIME = SecurityProperty.RUNTIME_INTEGRITY


def _build_plane(num_vms: int, num_shards: int, properties=(RUNTIME,),
                 seed: int = SEED, **plane_kwargs):
    plane = ShardPlane(
        num_shards=num_shards,
        seed=seed,
        num_servers=2,
        num_pcpus=4,
        key_bits=KEY_BITS,
        **plane_kwargs,
    )
    customer = plane.register_customer("alice")
    launches = [
        customer.launch_vm(
            "small", "cirros", properties=list(properties),
            workload={"name": "idle"},
        )
        for _ in range(num_vms)
    ]
    assert all(launch.accepted for launch in launches)
    return plane, customer, launches


def _build_single(num_vms: int, properties=(RUNTIME,)):
    cloud = CloudMonatt(
        num_servers=2, num_pcpus=4, seed=SEED, key_bits=KEY_BITS
    )
    customer = cloud.register_customer("alice")
    launches = [
        customer.launch_vm(
            "small", "cirros", properties=list(properties),
            workload={"name": "idle"},
        )
        for _ in range(num_vms)
    ]
    assert all(launch.accepted for launch in launches)
    return cloud, customer, launches


def _policy(vids, name="prod", version=1, period_ms=2000.0):
    return {
        "name": name,
        "version": version,
        "entities": [str(v) for v in vids],
        "checks": [{
            "name": "runtime",
            "property": "runtime_integrity",
            "period_ms": period_ms,
            "staleness_budget_ms": 3 * period_ms,
        }],
    }


# ----------------------------------------------------------------------
# transcript equivalence: sharded == single-controller, byte for byte
# ----------------------------------------------------------------------

def test_sharded_reports_byte_identical_to_single_controller():
    num_vms = 6
    single_cloud, single_customer, single_launches = _build_single(num_vms)
    plane, customer, launches = _build_plane(num_vms, num_shards=3)

    # the plane mints the same vid sequence a single cloud would
    assert [str(l.vid) for l in launches] == [
        str(l.vid) for l in single_launches
    ]
    # startup attestation reports from the launch pipeline
    assert [l.report.to_dict() for l in launches] == [
        l.report.to_dict() for l in single_launches
    ]
    # on-demand runtime rounds
    sharded = [customer.attest(l.vid, RUNTIME) for l in launches]
    baseline = [
        single_customer.attest(l.vid, RUNTIME) for l in single_launches
    ]
    assert [r.report.to_dict() for r in sharded] == [
        r.report.to_dict() for r in baseline
    ]
    # fleet batches, merged across shards back into request order
    fleet = customer.attest_fleet([(l.vid, RUNTIME) for l in launches])
    single_fleet = single_customer.attest_fleet(
        [(l.vid, RUNTIME) for l in single_launches]
    )
    assert [r.report.to_dict() for r in fleet.results] == [
        r.report.to_dict() for r in single_fleet
    ]
    # and the fleet really did span more than one shard
    assert len([s for s in fleet.by_shard.values() if s]) > 1


def test_one_shard_plane_is_the_single_controller_path():
    num_vms = 4
    single_cloud, single_customer, single_launches = _build_single(num_vms)
    plane, customer, launches = _build_plane(num_vms, num_shards=1)
    fleet = customer.attest_fleet([(l.vid, RUNTIME) for l in launches])
    single_fleet = single_customer.attest_fleet(
        [(l.vid, RUNTIME) for l in single_launches]
    )
    assert [r.report.to_dict() for r in fleet.results] == [
        r.report.to_dict() for r in single_fleet
    ]
    assert list(fleet.by_shard) == ["shard-1"]


# ----------------------------------------------------------------------
# hierarchical evidence
# ----------------------------------------------------------------------

def test_cross_shard_root_aggregates_per_shard_batch_roots():
    plane, customer, launches = _build_plane(6, num_shards=3)
    fleet = customer.attest_fleet([(l.vid, RUNTIME) for l in launches])
    assert fleet.healthy
    involved = sorted(n for n in fleet.shard_roots)
    assert sum(fleet.by_shard.values()) == len(launches)
    # the aggregate binds the per-shard roots in sorted shard-name order
    surviving = [fleet.shard_roots[n] for n in involved
                 if fleet.shard_roots[n] is not None]
    assert surviving and fleet.root == merkle_root(surviving)


def test_empty_fleet_request_short_circuits():
    plane, customer, _ = _build_plane(2, num_shards=2)
    fleet = customer.attest_fleet([])
    assert fleet.results == [] and fleet.root is None
    assert fleet.shard_roots == {} and fleet.healthy


def test_single_cloud_attest_fleet_with_root():
    cloud, customer, launches = _build_single(3)
    batch = customer.attest_fleet(
        [(l.vid, RUNTIME) for l in launches], with_root=True
    )
    assert len(batch.results) == 3
    assert batch.batch_root is not None
    assert customer.attest_fleet([], with_root=True).results == []


# ----------------------------------------------------------------------
# rebalancing
# ----------------------------------------------------------------------

def test_add_shard_moves_only_ring_adjacent_vms_and_keeps_reports():
    plane, customer, launches = _build_plane(8, num_shards=2)
    before = [
        customer.attest(l.vid, RUNTIME).report.to_dict() for l in launches
    ]
    report = plane.add_shard()
    assert report.reason == "add:shard-3"
    assert all(new == "shard-3" for _old, new in report.moved.values())
    assert report.moved, "adding a shard should claim some VMs"
    # placement agrees with the new ring everywhere
    for vid, owner in plane.placement.items():
        assert plane.ring.owner(vid) == owner
    after = [
        customer.attest(l.vid, RUNTIME).report.to_dict() for l in launches
    ]
    assert after == before


def test_remove_shard_hands_vms_to_successors_and_keeps_reports():
    plane, customer, launches = _build_plane(8, num_shards=3)
    victims = [v for v, s in plane.placement.items() if s == "shard-2"]
    before = [
        customer.attest(l.vid, RUNTIME).report.to_dict() for l in launches
    ]
    report = plane.remove_shard("shard-2")
    assert sorted(report.moved) == sorted(victims)
    assert all(old == "shard-2" for old, _new in report.moved.values())
    assert "shard-2" not in plane.shards
    assert "shard-2" not in plane.ring
    after = [
        customer.attest(l.vid, RUNTIME).report.to_dict() for l in launches
    ]
    assert after == before
    with pytest.raises(StateError):
        plane.remove_shard("shard-2")


def test_rebalance_is_deterministic_across_same_seed_planes():
    outcomes = []
    for _ in range(2):
        plane, customer, launches = _build_plane(8, num_shards=2)
        added = plane.add_shard()
        removed = plane.remove_shard("shard-1")
        fleet = customer.attest_fleet([(l.vid, RUNTIME) for l in launches])
        outcomes.append({
            "added": added.moved,
            "removed": removed.moved,
            "placement": dict(plane.placement),
            "salt": plane.ring.salt.hex(),
            "reports": [r.report.to_dict() for r in fleet.results],
            "root": fleet.root,
        })
    assert outcomes[0] == outcomes[1]


def test_rebalance_drains_in_flight_rounds_before_handoff():
    plane, customer, launches = _build_plane(6, num_shards=2)
    source = plane.shards["shard-1"]
    pipeline = source.cloud.controller.pipeline
    queued = [
        v for v, s in plane.placement.items() if s == "shard-1"
    ]
    assert queued, "seeded placement should give shard-1 some VMs"
    futures = [pipeline.submit(VmId(v), RUNTIME) for v in queued]
    assert pipeline.depth > 0
    report = plane.remove_shard("shard-1")
    assert report.drained_rounds.get("shard-1", 0) >= len(queued)
    assert all(f.done for f in futures)
    assert source.cloud.controller.pipeline.depth == 0


def test_last_shard_cannot_be_removed():
    plane, _customer, _ = _build_plane(2, num_shards=1)
    with pytest.raises(StateError):
        plane.remove_shard("shard-1")


# ----------------------------------------------------------------------
# policy fan-out
# ----------------------------------------------------------------------

def test_policy_splits_per_shard_and_survives_rebalance():
    plane, customer, launches = _build_plane(
        6, num_shards=2, telemetry_enabled=True
    )
    vids = [l.vid for l in launches]
    outcome = customer.register_policy(_policy(vids))
    assert outcome["policy"] == "prod"
    assert set(outcome["shards"]) == {
        plane.ring.owner(str(v)) for v in vids
    }
    plane.run_for(6000.0)
    status = customer.policy_status()
    assert len(status["entries"]) == len(vids)
    for entry in status["entries"]:
        assert entry["shard"] in plane.shards
        assert entry["fired"] > 0
    # a rebalance re-splits the standing policy; coverage continues
    plane.add_shard()
    plane.run_for(6000.0)
    rebalanced = customer.policy_status()
    assert len(rebalanced["entries"]) == len(vids)
    by_shard = {e["vid"]: e["shard"] for e in rebalanced["entries"]}
    for vid, owner in plane.placement.items():
        assert by_shard[vid] == owner


def test_policy_rejects_foreign_and_stale_registrations():
    plane, customer, launches = _build_plane(4, num_shards=2)
    vids = [l.vid for l in launches]
    mallory = plane.register_customer("mallory")
    with pytest.raises(PolicyError):
        mallory.register_policy(_policy(vids))
    with pytest.raises(StateError):
        customer.register_policy(_policy(["vm-9999"]))
    customer.register_policy(_policy(vids, version=3))
    with pytest.raises(PolicyError):
        customer.register_policy(_policy(vids, version=3))
    customer.register_policy(_policy(vids, version=4))


# ----------------------------------------------------------------------
# plane status / telemetry
# ----------------------------------------------------------------------

def test_plane_status_snapshot_is_deterministic():
    outcomes = []
    for _ in range(2):
        plane, customer, launches = _build_plane(4, num_shards=2)
        customer.attest_fleet([(l.vid, RUNTIME) for l in launches])
        status = plane.status()
        outcomes.append(status)
        assert status["vms"] == 4
        assert sorted(status["shards"]) == ["shard-1", "shard-2"]
        assert sum(status["ring"]["distribution"].values()) == 4
        for shard_status in status["shards"].values():
            assert shard_status["pipeline_depth"] == 0
            for described in shard_status["attestation_servers"]:
                assert described["shard"] in ("shard-1", "shard-2")
    assert outcomes[0] == outcomes[1]


def test_fanout_counters_and_shard_tagged_flight_records():
    plane, customer, launches = _build_plane(
        4, num_shards=2, telemetry_enabled=True
    )
    customer.attest_fleet([(l.vid, RUNTIME) for l in launches])
    snapshot = plane.telemetry.snapshot()
    fanout = snapshot["shard.fanout.rounds"]["series"]
    assert sum(fanout.values()) >= len(launches)
    # each shard's flight records carry its shard label
    for name, shard in plane.shards.items():
        records = shard.cloud.observatory.flight_records()
        assert records, "telemetry-enabled shard should record rounds"
        assert all(r.shard == name for r in records)
