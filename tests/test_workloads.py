"""Tests for the workload catalog."""

import pytest

from repro.attacks import AvailabilityAttackWorkload, CovertChannelSender
from repro.common.errors import ConfigurationError
from repro.common.identifiers import VmId
from repro.common.rng import DeterministicRng
from repro.workloads import CLOUD_BENCHMARKS, SPEC_PROGRAMS, make_workload, workload_names
from repro.xen import (
    CpuBoundWorkload,
    FiniteCpuBoundWorkload,
    Hypervisor,
    IdleWorkload,
    IoBoundWorkload,
    PhasedWorkload,
)

RNG = DeterministicRng(1)


class TestRegistry:
    def test_all_names_resolve(self):
        for name in workload_names():
            assert make_workload(name, RNG) is not None

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            make_workload("quantum-miner", RNG)

    def test_cpu_benchmarks_are_phased(self):
        for name in ("database", "web", "app"):
            assert isinstance(make_workload(name, RNG), PhasedWorkload)

    def test_io_benchmarks_are_io_bound(self):
        for name in ("file", "stream", "mail"):
            assert isinstance(make_workload(name, RNG), IoBoundWorkload)

    def test_spec_programs_are_finite(self):
        for name in SPEC_PROGRAMS:
            workload = make_workload(name, RNG)
            assert isinstance(workload, FiniteCpuBoundWorkload)
            assert workload.total_cpu_ms == SPEC_PROGRAMS[name]

    def test_spec_demand_override(self):
        workload = make_workload("bzip2", RNG, total_cpu_ms=50.0)
        assert workload.total_cpu_ms == 50.0

    def test_utility_workloads(self):
        assert isinstance(make_workload("idle", RNG), IdleWorkload)
        assert isinstance(make_workload("cpu_bound", RNG), CpuBoundWorkload)

    def test_attack_workloads(self):
        attack = make_workload("cpu_availability_attack", RNG)
        assert isinstance(attack, AvailabilityAttackWorkload)
        sender = make_workload("covert_channel_sender", RNG, bits=[1, 1, 0])
        assert isinstance(sender, CovertChannelSender)
        assert sender.bits == [1, 1, 0]

    def test_attack_params_forwarded(self):
        attack = make_workload(
            "cpu_availability_attack", RNG, margin_before_ms=0.6
        )
        assert attack.margin_before_ms == 0.6

    def test_instances_are_fresh(self):
        assert make_workload("database", RNG) is not make_workload("database", RNG)


class TestBenchmarkBehaviours:
    """The characterizations that Figs. 6/7 depend on must hold."""

    @pytest.mark.parametrize("name", ["database", "web", "app"])
    def test_cpu_benchmarks_saturate(self, name):
        hv = Hypervisor()
        dom = hv.create_domain(VmId("b"), make_workload(name, DeterministicRng(3)))
        hv.run_for(5000.0)
        profile = CLOUD_BENCHMARKS[name]
        assert dom.relative_cpu_usage(hv.now) == pytest.approx(
            profile.cpu_fraction, abs=0.08
        )

    @pytest.mark.parametrize("name", ["file", "stream", "mail"])
    def test_io_benchmarks_stay_light(self, name):
        hv = Hypervisor()
        dom = hv.create_domain(VmId("b"), make_workload(name, DeterministicRng(3)))
        hv.run_for(5000.0)
        assert dom.relative_cpu_usage(hv.now) < 0.25

    def test_spec_relative_magnitudes(self):
        assert SPEC_PROGRAMS["hmmer"] > SPEC_PROGRAMS["bzip2"] > SPEC_PROGRAMS["astar"]
