"""Robustness batteries: malformed input must fail clean, never corrupt.

Two layers:

- the canonical decoder faces arbitrary bytes off the wire and must
  either return a value or raise ``CryptoError`` — never crash with an
  internal error or loop;
- the controller faces arbitrary (authenticated but malformed) customer
  messages and must keep serving legitimate requests correctly after
  any storm of garbage — errors must not corrupt its databases or
  subscriptions.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CloudMonatt, SecurityProperty
from repro.common.errors import CloudMonattError, CryptoError
from repro.crypto.encoding import decode, encode
from repro.protocol import messages as msg


class TestDecoderFuzz:
    @given(st.binary(max_size=200))
    @settings(max_examples=300)
    def test_arbitrary_bytes_never_crash_the_decoder(self, blob):
        try:
            decode(blob)
        except CryptoError:
            pass  # the only acceptable failure mode

    @given(st.binary(max_size=100), st.integers(min_value=0, max_value=99))
    @settings(max_examples=100)
    def test_truncations_of_valid_encodings_fail_clean(self, payload, cut):
        blob = encode({"data": payload, "n": 7})
        truncated = blob[: min(cut, len(blob) - 1)]
        try:
            decode(truncated)
        except CryptoError:
            pass

    @given(st.binary(max_size=60), st.integers(min_value=0, max_value=59),
           st.integers(min_value=0, max_value=255))
    @settings(max_examples=100)
    def test_bitflips_of_valid_encodings_fail_clean_or_decode(self, payload,
                                                              position, value):
        blob = bytearray(encode([payload, "tag"]))
        blob[position % len(blob)] = value
        try:
            decode(bytes(blob))
        except CryptoError:
            pass


MALFORMED_BODIES = [
    {},  # no type at all
    {msg.KEY_TYPE: "launch_vm"},  # missing every field
    {msg.KEY_TYPE: "launch_vm", "flavor_name": "nonexistent",
     "image_name": "cirros", "properties": [], "workload": {"name": "idle"}},
    {msg.KEY_TYPE: "launch_vm", "flavor_name": "small",
     "image_name": "cirros", "properties": ["bogus_property"],
     "workload": {"name": "idle"}},
    {msg.KEY_TYPE: "launch_vm", "flavor_name": "small",
     "image_name": "cirros", "properties": [],
     "workload": {"name": "warp_drive"}},
    {msg.KEY_TYPE: "runtime_attest_current", msg.KEY_VID: "vm-9999",
     msg.KEY_PROPERTY: "cpu_availability", msg.KEY_NONCE: b"\x01" * 16},
    {msg.KEY_TYPE: "runtime_attest_current", msg.KEY_VID: "vm-0001",
     msg.KEY_PROPERTY: "not_a_property", msg.KEY_NONCE: b"\x02" * 16},
    {msg.KEY_TYPE: "runtime_attest_periodic", msg.KEY_VID: "vm-0001",
     msg.KEY_PROPERTY: "cpu_availability", msg.KEY_NONCE: b"\x03" * 16},
    {msg.KEY_TYPE: "stop_attest_periodic", msg.KEY_VID: "vm-0001",
     msg.KEY_PROPERTY: "cpu_availability", msg.KEY_NONCE: b"\x04" * 16},
    {msg.KEY_TYPE: "terminate_vm", msg.KEY_VID: "vm-9999"},
    {msg.KEY_TYPE: "resume_vm", msg.KEY_VID: "vm-9999"},
    {msg.KEY_TYPE: "self_destruct"},
]


class TestControllerResilience:
    def test_garbage_storm_then_normal_service(self):
        """Every malformed message errors cleanly; legitimate service is
        unaffected afterwards."""
        cloud = CloudMonatt(num_servers=2, seed=57)
        alice = cloud.register_customer("alice")
        for body in MALFORMED_BODIES:
            with pytest.raises((CloudMonattError, ValueError)):
                alice.endpoint.call("controller", dict(body))
        # the controller still works, end to end
        vm = alice.launch_vm(
            "small", "ubuntu",
            properties=[SecurityProperty.RUNTIME_INTEGRITY,
                        SecurityProperty.STARTUP_INTEGRITY],
        )
        assert vm.accepted
        result = alice.attest(vm.vid, SecurityProperty.RUNTIME_INTEGRITY)
        assert result.report.healthy
        # no phantom VM records were created by the failed launches
        records = cloud.controller.database.vms()
        live = [r for r in records if r.live]
        assert len(live) == 1

    def test_nonce_reuse_across_requests_rejected(self):
        """A customer (or a compromised client library) reusing its own
        nonce is caught by the controller's replay cache."""
        cloud = CloudMonatt(num_servers=1, seed=58)
        alice = cloud.register_customer("alice")
        vm = alice.launch_vm(
            "small", "ubuntu",
            properties=[SecurityProperty.RUNTIME_INTEGRITY,
                        SecurityProperty.STARTUP_INTEGRITY],
        )
        body = {
            msg.KEY_TYPE: "runtime_attest_current",
            msg.KEY_VID: str(vm.vid),
            msg.KEY_PROPERTY: "runtime_integrity",
            msg.KEY_NONCE: b"\x42" * 16,
        }
        alice.endpoint.call("controller", dict(body))
        with pytest.raises(CloudMonattError):
            alice.endpoint.call("controller", dict(body))

    def test_duplicate_periodic_subscription_rejected(self):
        cloud = CloudMonatt(num_servers=1, seed=59)
        alice = cloud.register_customer("alice")
        vm = alice.launch_vm(
            "small", "ubuntu",
            properties=[SecurityProperty.CPU_AVAILABILITY,
                        SecurityProperty.STARTUP_INTEGRITY],
            workload={"name": "cpu_bound"},
        )
        alice.start_periodic_attestation(
            vm.vid, SecurityProperty.CPU_AVAILABILITY, frequency_ms=10_000.0
        )
        with pytest.raises(CloudMonattError):
            alice.start_periodic_attestation(
                vm.vid, SecurityProperty.CPU_AVAILABILITY, frequency_ms=5_000.0
            )

    def test_stop_without_subscription_rejected(self):
        cloud = CloudMonatt(num_servers=1, seed=60)
        alice = cloud.register_customer("alice")
        vm = alice.launch_vm("small", "ubuntu",
                             properties=[SecurityProperty.STARTUP_INTEGRITY])
        with pytest.raises(CloudMonattError):
            alice.stop_periodic_attestation(
                vm.vid, SecurityProperty.CPU_AVAILABILITY
            )
