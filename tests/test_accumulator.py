"""Tests for periodic measurement accumulation (§3.2.1)."""

import pytest

from repro import CloudMonatt, SecurityProperty
from repro.attest_server.accumulator import MeasurementAccumulator
from repro.common.identifiers import VmId
from repro.monitors.monitor_module import (
    MEAS_BUS_LOCK_HISTOGRAM,
    MEAS_CPU_INTERVAL_HISTOGRAM,
    MEAS_CPU_USAGE,
    MEAS_KERNEL_MODULES,
    MEAS_TASK_LIST,
)
from repro.properties import CovertChannelInterpreter

VID = VmId("vm-0001")
PROP = SecurityProperty.COVERT_CHANNEL_FREEDOM


class TestMergeRules:
    @pytest.fixture()
    def accumulator(self):
        return MeasurementAccumulator()

    def test_histograms_sum(self, accumulator):
        accumulator.add(VID, PROP, {MEAS_CPU_INTERVAL_HISTOGRAM: [1, 0, 2]})
        accumulator.add(VID, PROP, {MEAS_CPU_INTERVAL_HISTOGRAM: [0, 3, 1]})
        merged = accumulator.accumulated(VID, PROP)
        assert merged[MEAS_CPU_INTERVAL_HISTOGRAM] == [1, 3, 3]

    def test_cpu_usage_sums(self, accumulator):
        prop = SecurityProperty.CPU_AVAILABILITY
        accumulator.add(VID, prop, {MEAS_CPU_USAGE: {"cpu_ms": 100.0, "wall_ms": 500.0}})
        accumulator.add(VID, prop, {MEAS_CPU_USAGE: {"cpu_ms": 300.0, "wall_ms": 500.0}})
        merged = accumulator.accumulated(VID, prop)
        assert merged[MEAS_CPU_USAGE] == {
            "cpu_ms": 400.0, "wall_ms": 1000.0, "wait_ms": 0.0,
        }

    def test_task_list_latest_plus_ever_seen(self, accumulator):
        prop = SecurityProperty.RUNTIME_INTEGRITY
        accumulator.add(VID, prop, {MEAS_TASK_LIST: [{"pid": 1, "name": "init"},
                                                     {"pid": 9, "name": "flash-job"}]})
        accumulator.add(VID, prop, {MEAS_TASK_LIST: [{"pid": 1, "name": "init"}]})
        merged = accumulator.accumulated(VID, prop)
        # the latest snapshot is what the interpreter judges...
        assert merged[MEAS_TASK_LIST] == [{"pid": 1, "name": "init"}]
        # ...but the transient process is not forgotten
        assert "flash-job" in accumulator.ever_seen_tasks(VID, prop)

    def test_modules_union(self, accumulator):
        prop = SecurityProperty.RUNTIME_INTEGRITY
        accumulator.add(VID, prop, {MEAS_KERNEL_MODULES: ["ext4"]})
        accumulator.add(VID, prop, {MEAS_KERNEL_MODULES: ["e1000", "ext4"]})
        merged = accumulator.accumulated(VID, prop)
        assert merged[MEAS_KERNEL_MODULES] == ["e1000", "ext4"]

    def test_rounds_counted(self, accumulator):
        assert accumulator.rounds(VID, PROP) == 0
        for _ in range(3):
            accumulator.add(VID, PROP, {MEAS_CPU_INTERVAL_HISTOGRAM: [1]})
        assert accumulator.rounds(VID, PROP) == 3

    def test_reset(self, accumulator):
        accumulator.add(VID, PROP, {MEAS_CPU_INTERVAL_HISTOGRAM: [1]})
        accumulator.reset(VID)
        assert accumulator.accumulated(VID, PROP) is None
        assert accumulator.rounds(VID, PROP) == 0

    def test_keys_are_per_property(self, accumulator):
        accumulator.add(VID, PROP, {MEAS_CPU_INTERVAL_HISTOGRAM: [1]})
        assert accumulator.accumulated(
            VID, SecurityProperty.CPU_AVAILABILITY
        ) is None


class TestMinSupport:
    def test_sparse_histogram_is_inconclusive(self):
        interpreter = CovertChannelInterpreter(min_support=20.0)
        counts = [0] * 30
        counts[4] = 1
        counts[24] = 1  # bimodal but only 2 samples
        report = interpreter.interpret(VID, {MEAS_CPU_INTERVAL_HISTOGRAM: counts})
        assert report.healthy
        assert report.details["inconclusive"]

    def test_accumulated_histogram_convicts(self):
        interpreter = CovertChannelInterpreter(min_support=20.0)
        accumulator = MeasurementAccumulator()
        counts = [0] * 30
        counts[4] = 2
        counts[24] = 2
        for _ in range(8):  # 8 sparse rounds -> 32 samples total
            accumulator.add(VID, PROP, {MEAS_CPU_INTERVAL_HISTOGRAM: list(counts)})
        merged = accumulator.accumulated(VID, PROP)
        report = interpreter.interpret(VID, merged)
        assert not report.healthy
        assert not report.details["inconclusive"]


class TestAccumulationEndToEnd:
    def test_periodic_rounds_converge_on_a_sparse_covert_channel(self):
        """A low-duty covert sender emits too few intervals per short
        window to convict in one round; accumulated periodic rounds
        reach support and the verdict flips to unhealthy."""
        cloud = CloudMonatt(num_servers=1, num_pcpus=1, seed=47)
        alice = cloud.register_customer("alice")
        sender = alice.launch_vm(
            "small", "ubuntu",
            properties=[SecurityProperty.COVERT_CHANNEL_FREEDOM,
                        SecurityProperty.STARTUP_INTEGRITY],
            workload={"name": "covert_channel_sender",
                      "params": {"gap_ms": 200.0}},  # sparse bursts
            pins=[0],
        )
        alice.launch_vm("small", "ubuntu", workload={"name": "cpu_bound"},
                        pins=[0])
        # one short window: too little evidence
        single = alice.attest(
            sender.vid, SecurityProperty.COVERT_CHANNEL_FREEDOM,
            window_ms=800.0,
        )
        assert single.report.healthy
        assert single.report.details["inconclusive"]
        # periodic accumulation with the same short windows
        alice.start_periodic_attestation(
            sender.vid, SecurityProperty.COVERT_CHANNEL_FREEDOM,
            frequency_ms=5_000.0,
        )
        cloud.run_for(60_000.0)
        results = alice.periodic_results(
            sender.vid, SecurityProperty.COVERT_CHANNEL_FREEDOM
        )
        assert results
        assert not results[-1].report.healthy
        assert results[-1].report.details["accumulated_rounds"] >= 2
