"""The attestation flight recorder, end to end.

The promises pinned here: every attestation round — on-demand,
fleet-batched, policy-scheduled — is minted one ``round_id`` that tags
all of its spans and events; the lazy join reconstructs the round's
full causal chain (retries, re-handshakes, breaker trips, degraded
verdicts, policy alarm transitions) from either a live observatory or
a parsed JSONL artifact; same-seed runs export byte-identical
``flight_record`` lines; and the shared nearest-rank quantile helper
answers its edge cases the same way for histograms and the trace store.
"""

from __future__ import annotations

import json

import pytest

from repro import CloudMonatt, SecurityProperty
from repro.cli import main
from repro.common.errors import ConfigurationError
from repro.network.faults import FaultInjector, FaultSpec
from repro.telemetry import (
    SPAN_APPRAISAL,
    SPAN_Q1,
    SPAN_Q2,
    SPAN_Q3,
    export_jsonl_lines,
    flight_records_from_records,
    nearest_rank,
    read_jsonl,
)
from repro.telemetry.metrics import Histogram
from repro.telemetry.observatory import (
    TraceStore,
    render_flight_record,
    render_round_summary,
)
from repro.guest import HiddenServiceMalware

KEY_BITS = 512
SEED = 91
RUNTIME = SecurityProperty.RUNTIME_INTEGRITY


def _build_cloud(num_vms: int = 1, **cloud_kwargs):
    cloud = CloudMonatt(
        num_servers=2,
        num_pcpus=num_vms + 2,
        seed=SEED,
        key_bits=KEY_BITS,
        telemetry_enabled=True,
        **cloud_kwargs,
    )
    customer = cloud.register_customer("alice")
    vids = [
        customer.launch_vm(
            "small", "ubuntu", properties=[RUNTIME],
            workload={"name": "idle"},
        ).vid
        for _ in range(num_vms)
    ]
    return cloud, customer, vids


def _inject(cloud, leg: str, spec: FaultSpec) -> None:
    cloud.network.install_fault_injector(
        FaultInjector(cloud.rng.child("test-faults"), {leg: spec})
    )


def _flights(cloud) -> list[dict]:
    return [record.to_dict()
            for record in cloud.telemetry.observatory.flight_records()]


def _flight_lines(cloud) -> list[str]:
    return [line for line in export_jsonl_lines(cloud.telemetry)
            if '"type":"flight_record"' in line]


# ----------------------------------------------------------------------
# round correlation: on-demand, fault-injected, batched, scheduled
# ----------------------------------------------------------------------


class TestRoundCorrelation:
    def test_on_demand_round_tags_every_leg(self):
        cloud, customer, vids = _build_cloud()
        customer.attest(vids[0], RUNTIME)
        (flight,) = _flights(cloud)
        assert flight["round_id"] == "r000001"
        assert flight["vid"] == str(vids[0])
        assert flight["property"] == "runtime_integrity"
        assert flight["source"] == "on-demand"
        assert flight["verdict"] == "HEALTHY"
        assert not flight["degraded"]
        assert not flight["batched"]
        leg_names = {leg["name"] for leg in flight["legs"]}
        assert {SPAN_Q1, SPAN_Q2, SPAN_Q3, SPAN_APPRAISAL} <= leg_names
        assert flight["start_ms"] is not None
        assert flight["end_ms"] is not None
        assert flight["start_ms"] <= flight["end_ms"]
        # the window brackets every leg of the round
        for leg in flight["legs"]:
            assert flight["start_ms"] <= leg["start_ms"]
        kinds = {event["kind"] for event in flight["events"]}
        assert "attestation" in kinds

    def test_transient_fault_chain_is_reconstructed(self):
        cloud, customer, vids = _build_cloud()
        _inject(cloud, "controller_as", FaultSpec(drop=1.0, limit=1))
        result = customer.attest(vids[0], RUNTIME)
        assert result.report.healthy
        (flight,) = _flights(cloud)
        assert flight["verdict"] == "HEALTHY"
        retries = [e for e in flight["events"] if e["kind"] == "retry"]
        assert retries, "the injected drop must surface as a tagged retry"
        assert retries[0]["fields"]["round_id"] == flight["round_id"]
        rehandshakes = [leg for leg in flight["legs"]
                       if leg["attrs"].get("rehandshake")]
        assert rehandshakes, "the torn channel re-handshakes inside the round"
        narrative = render_flight_record(flight)
        assert "retry #1" in narrative
        assert "re-handshake" in narrative
        assert "verdict: HEALTHY" in narrative

    def test_persistent_fault_degrades_with_full_chain(self):
        cloud, customer, vids = _build_cloud()
        _inject(cloud, "controller_as", FaultSpec(drop=1.0))
        result = customer.attest(vids[0], RUNTIME)
        assert result.report.details.get("verdict") == "UNREACHABLE"
        (flight,) = _flights(cloud)
        assert flight["verdict"] == "UNREACHABLE"
        assert flight["degraded"]
        kinds = [event["kind"] for event in flight["events"]]
        assert "retry" in kinds
        assert "retry_giveup" in kinds
        narrative = render_flight_record(flight)
        assert "retries exhausted" in narrative
        assert "verdict: UNREACHABLE (degraded)" in narrative

    def test_breaker_trip_lands_in_the_tripping_round(self):
        cloud, customer, vids = _build_cloud(
            breaker_failure_threshold=1, breaker_reset_after_ms=60_000.0
        )
        _inject(cloud, "controller_as", FaultSpec(drop=1.0))
        customer.attest(vids[0], RUNTIME)
        (flight,) = _flights(cloud)
        trips = [e for e in flight["events"] if e["kind"] == "breaker_state"]
        assert any(e["fields"]["state"] == "open" for e in trips)
        assert "breaker open since t=" in render_flight_record(flight)

    def test_fleet_rounds_share_batched_legs(self):
        cloud, customer, vids = _build_cloud(num_vms=3)
        results = customer.attest_fleet([(vid, RUNTIME) for vid in vids])
        assert len(results) == 3
        flights = _flights(cloud)
        assert [f["round_id"] for f in flights] == \
            sorted(f["round_id"] for f in flights)
        assert len(flights) == 3
        assert {f["vid"] for f in flights} == {str(v) for v in vids}
        for flight in flights:
            assert flight["source"] == "fleet"
            assert flight["batched"], "the batch Q1 leg is shared"
            assert flight["verdict"] == "HEALTHY"
        shared = [leg for leg in flights[0]["legs"] if leg["shared"]]
        assert shared, "at least the batched Q1 leg serves several rounds"

    def test_policy_alarm_transition_carries_the_round_id(self):
        cloud, customer, vids = _build_cloud()
        customer.register_policy({
            "name": "prod",
            "version": 1,
            "entities": [str(v) for v in vids],
            "checks": [{
                "name": "runtime", "property": "runtime_integrity",
                "period_ms": 1000.0, "staleness_budget_ms": 5000.0,
                "warning_after": 2, "critical_after": 4, "clear_after": 2,
            }],
        })
        guest = cloud.server_of(vids[0]).hosted[vids[0]].guest
        HiddenServiceMalware().infect(guest)
        cloud.run_for(8_000)
        alarmed = [f for f in _flights(cloud) if f["alarms"]]
        assert alarmed, "the WARNING transition must land in a flight record"
        flight = alarmed[0]
        (alarm,) = flight["alarms"]
        assert alarm["round_id"] == flight["round_id"]
        assert (alarm["old_state"], alarm["new_state"]) == ("OK", "WARNING")
        assert flight["verdict"] == "UNHEALTHY"
        assert "alarms fired:" in render_flight_record(flight)


# ----------------------------------------------------------------------
# determinism and artifact round-trips
# ----------------------------------------------------------------------


class TestDeterminism:
    def _fault_run_lines(self) -> list[str]:
        cloud, customer, vids = _build_cloud()
        _inject(cloud, "controller_as", FaultSpec(drop=1.0, limit=1))
        customer.attest(vids[0], RUNTIME)
        return _flight_lines(cloud)

    def test_same_seed_flight_records_are_byte_identical(self):
        first = self._fault_run_lines()
        second = self._fault_run_lines()
        assert first, "the run must export flight_record lines"
        assert first == second

    def test_round_tracking_off_exports_no_flight_records(self):
        cloud, customer, vids = _build_cloud(flight_recorder_enabled=False)
        customer.attest(vids[0], RUNTIME)
        assert _flight_lines(cloud) == []
        assert cloud.telemetry.mint_round_id() is None

    def test_artifact_prefers_precomputed_lines(self, tmp_path):
        cloud, customer, vids = _build_cloud()
        customer.attest(vids[0], RUNTIME)
        path = tmp_path / "trace.jsonl"
        from repro.telemetry import write_jsonl
        write_jsonl(cloud.telemetry, str(path))
        records = read_jsonl(str(path))
        flights = flight_records_from_records(records)
        assert flights == _flights(cloud)

    def test_old_artifact_rebuilds_from_spans_and_events(self, tmp_path):
        cloud, customer, vids = _build_cloud()
        customer.attest(vids[0], RUNTIME)
        records = [r for r in read_jsonl(_write(cloud, tmp_path))
                   if r.get("type") != "flight_record"]
        rebuilt = flight_records_from_records(records)
        assert rebuilt == _flights(cloud)


def _write(cloud, tmp_path) -> str:
    from repro.telemetry import write_jsonl

    path = tmp_path / "trace.jsonl"
    write_jsonl(cloud.telemetry, str(path))
    return str(path)


# ----------------------------------------------------------------------
# the `repro explain` CLI
# ----------------------------------------------------------------------


class TestExplainCli:
    @pytest.fixture()
    def trace_path(self, tmp_path):
        cloud, customer, vids = _build_cloud()
        _inject(cloud, "controller_as", FaultSpec(drop=1.0, limit=1))
        customer.attest(vids[0], RUNTIME)
        customer.attest(vids[0], SecurityProperty.CPU_AVAILABILITY)
        return _write(cloud, tmp_path), str(vids[0])

    def test_lists_round_summaries(self, trace_path, capsys):
        path, vid = trace_path
        assert main(["explain", path]) == 0
        out = capsys.readouterr().out
        assert "r000001" in out
        assert "r000002" in out
        assert "2 round(s)" in out

    def test_single_round_narrative(self, trace_path, capsys):
        path, vid = trace_path
        assert main(["explain", path, "--round", "0"]) == 0
        out = capsys.readouterr().out
        assert "=== flight record r000001 ===" in out
        assert "causal chain:" in out
        assert "retry #1" in out

    def test_vid_filter(self, trace_path, capsys):
        path, vid = trace_path
        assert main(["explain", path, vid]) == 0
        assert vid in capsys.readouterr().out
        assert main(["explain", path, "vm-9999"]) == 2
        assert "no flight records" in capsys.readouterr().err

    def test_json_mode_round_trips(self, trace_path, capsys):
        path, vid = trace_path
        assert main(["explain", path, "--json"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        flights = [json.loads(line) for line in lines]
        assert flights[0]["round_id"] == "r000001"
        assert all(f["vid"] == vid for f in flights)

    def test_round_out_of_range_exits_two(self, trace_path, capsys):
        path, vid = trace_path
        assert main(["explain", path, "--round", "9"]) == 2
        assert "out of range" in capsys.readouterr().err

    def test_summary_rendering_is_one_line_per_round(self, trace_path):
        path, vid = trace_path
        for flight in flight_records_from_records(read_jsonl(path)):
            summary = render_round_summary(flight)
            assert "\n" not in summary
            assert flight["round_id"] in summary


class TestTraceJson:
    @pytest.fixture()
    def trace_path(self, tmp_path):
        cloud, customer, vids = _build_cloud()
        customer.attest(vids[0], RUNTIME)
        return _write(cloud, tmp_path), str(vids[0])

    def test_leg_table_json(self, trace_path, capsys):
        path, _ = trace_path
        assert main(["trace", path, "--json"]) == 0
        table = json.loads(capsys.readouterr().out)
        assert SPAN_Q1 in table
        assert set(table[SPAN_Q1]) == {"p50", "p90", "p99", "max", "count"}

    def test_filter_json_is_one_span_per_line(self, trace_path, capsys):
        path, vid = trace_path
        assert main(["trace", path, "--vid", vid, "--json"]) == 0
        spans = [json.loads(line)
                 for line in capsys.readouterr().out.strip().splitlines()]
        assert spans
        assert all(s["attrs"]["vid"] == vid for s in spans)

    def test_waterfall_json_is_the_span_tree(self, trace_path, capsys):
        path, _ = trace_path
        assert main(["trace", path, "--waterfall", "0", "--json"]) == 0
        tree = json.loads(capsys.readouterr().out)
        assert tree[0]["name"] == SPAN_Q1
        assert tree[0]["depth"] == 0
        assert any(node["depth"] > 0 for node in tree)


# ----------------------------------------------------------------------
# the shared nearest-rank quantile helper (satellite)
# ----------------------------------------------------------------------


class TestNearestRank:
    def test_empty_sequence_raises(self):
        with pytest.raises(ConfigurationError, match="empty"):
            nearest_rank([], 0.5)

    def test_single_observation_answers_every_quantile(self):
        for q in (0.0, 0.5, 0.99, 1.0):
            assert nearest_rank([7.0], q) == 7.0

    def test_extremes_are_min_and_max(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert nearest_rank(values, 0.0) == 1.0
        assert nearest_rank(values, 1.0) == 4.0

    def test_out_of_range_q_raises(self):
        with pytest.raises(ConfigurationError, match=r"outside \[0, 1\]"):
            nearest_rank([1.0], 1.5)

    def test_histogram_and_tracestore_agree(self):
        values = [3.0, 1.0, 4.0, 1.0, 5.0]
        histogram = Histogram("h", buckets=(10.0,))
        store = TraceStore()
        for i, value in enumerate(values):
            histogram.observe(value)
            store.add_record({"span_id": i, "parent_id": None,
                              "name": "leg", "start_ms": 0.0,
                              "end_ms": value, "attrs": {}})
        stats = store.percentiles("leg", qs=(0.5, 0.9))
        assert stats["p50"] == histogram.quantile(0.5)
        assert stats["p90"] == histogram.quantile(0.9)
        assert stats["count"] == 5

    def test_tracestore_empty_leg_still_returns_empty_dict(self):
        assert TraceStore().percentiles("leg") == {}

    def test_histogram_empty_still_raises_named_error(self):
        with pytest.raises(ConfigurationError, match="'h' has no observations"):
            Histogram("h", buckets=(1.0,)).quantile(0.5)
