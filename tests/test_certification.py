"""Tests for the Property Certification Module."""

import pytest

from repro import CloudMonatt, SecurityProperty
from repro.attest_server.certification import (
    PropertyCertificate,
    PropertyCertificationModule,
    verify_property_certificate,
)
from repro.common.errors import SignatureError, StateError
from repro.common.identifiers import VmId
from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import generate_keypair
from repro.crypto.signatures import sign
from repro.properties import PropertyReport, SecurityProperty as SP

VID = VmId("vm-0001")


def healthy_report() -> PropertyReport:
    return PropertyReport(
        prop=SP.CPU_AVAILABILITY, healthy=True, explanation="fine"
    )


@pytest.fixture()
def module_and_key():
    keys = generate_keypair(HmacDrbg(5), bits=512)
    module = PropertyCertificationModule(
        issuer="as-1",
        signer=lambda payload: sign(keys.private, payload),
        validity_ms=1000.0,
    )
    return module, keys.public


class TestCertificationModule:
    def test_issue_and_verify(self, module_and_key):
        module, key = module_and_key
        certificate = module.issue(VID, healthy_report(), now_ms=100.0)
        verify_property_certificate(key, certificate, now_ms=500.0)
        assert certificate.healthy
        assert certificate.valid_until_ms == 1100.0

    def test_expired_certificate_rejected(self, module_and_key):
        module, key = module_and_key
        certificate = module.issue(VID, healthy_report(), now_ms=100.0)
        with pytest.raises(SignatureError):
            verify_property_certificate(key, certificate, now_ms=2000.0)

    def test_forged_certificate_rejected(self, module_and_key):
        import dataclasses

        module, key = module_and_key
        certificate = module.issue(
            VID,
            PropertyReport(prop=SP.CPU_AVAILABILITY, healthy=False,
                           explanation="starved"),
            now_ms=100.0,
        )
        forged = dataclasses.replace(certificate, healthy=True)
        with pytest.raises(SignatureError):
            verify_property_certificate(key, forged, now_ms=500.0)

    def test_revocation(self, module_and_key):
        module, key = module_and_key
        certificate = module.issue(VID, healthy_report(), now_ms=0.0)
        module.revoke(certificate.serial)
        with pytest.raises(SignatureError):
            verify_property_certificate(
                key, certificate, now_ms=500.0,
                revocation_check=module.is_revoked,
            )

    def test_serials_increment(self, module_and_key):
        module, _ = module_and_key
        a = module.issue(VID, healthy_report(), now_ms=0.0)
        b = module.issue(VID, healthy_report(), now_ms=0.0)
        assert b.serial == a.serial + 1

    def test_dict_roundtrip(self, module_and_key):
        module, _ = module_and_key
        certificate = module.issue(VID, healthy_report(), now_ms=0.0)
        assert PropertyCertificate.from_dict(certificate.to_dict()) == certificate

    def test_validity_must_be_positive(self):
        with pytest.raises(StateError):
            PropertyCertificationModule("x", lambda p: b"", validity_ms=0.0)


class TestCertificationEndToEnd:
    def test_customer_receives_verifiable_certificate(self):
        cloud = CloudMonatt(num_servers=1, seed=88)
        alice = cloud.register_customer("alice")
        vm = alice.launch_vm(
            "small", "ubuntu",
            properties=[SecurityProperty.RUNTIME_INTEGRITY,
                        SecurityProperty.STARTUP_INTEGRITY],
        )
        result = alice.attest(vm.vid, SecurityProperty.RUNTIME_INTEGRITY)
        assert result.certificate is not None
        certificate = PropertyCertificate.from_dict(result.certificate)
        # a third party verifies with the AS public key
        verify_property_certificate(
            cloud.attestation_server.endpoint.public_key,
            certificate,
            now_ms=cloud.now,
            revocation_check=cloud.attestation_server.certification.is_revoked,
        )
        assert certificate.healthy
        assert certificate.vid == str(vm.vid)

    def test_degradation_revokes_stale_healthy_certificates(self):
        cloud = CloudMonatt(num_servers=1, num_pcpus=1, seed=89)
        alice = cloud.register_customer("alice")
        victim = alice.launch_vm(
            "small", "ubuntu",
            properties=[SecurityProperty.CPU_AVAILABILITY,
                        SecurityProperty.STARTUP_INTEGRITY],
            workload={"name": "cpu_bound"}, pins=[0],
        )
        healthy = alice.attest(victim.vid, SecurityProperty.CPU_AVAILABILITY)
        healthy_cert = PropertyCertificate.from_dict(healthy.certificate)
        assert healthy_cert.healthy
        # attack lands; the next attestation is unhealthy
        alice.launch_vm(
            "medium", "ubuntu", workload={"name": "cpu_availability_attack"},
            pins=[0, 0],
        )
        degraded = alice.attest(victim.vid, SecurityProperty.CPU_AVAILABILITY)
        assert not degraded.report.healthy
        # the stale healthy certificate no longer verifies
        with pytest.raises(SignatureError):
            verify_property_certificate(
                cloud.attestation_server.endpoint.public_key,
                healthy_cert,
                now_ms=cloud.now,
                revocation_check=cloud.attestation_server.certification.is_revoked,
            )
