"""Tests for the network, attacker, and secure-channel layers."""

import pytest

from repro.common.errors import (
    CryptoError,
    NetworkError,
    ProtocolError,
    ReplayError,
    SignatureError,
)
from repro.common.rng import DeterministicRng
from repro.crypto.certificates import CertificateAuthority
from repro.crypto.drbg import HmacDrbg
from repro.crypto.encryption import private_decrypt, public_encrypt
from repro.crypto.rsa import generate_keypair
from repro.network import (
    DropAttacker,
    Eavesdropper,
    ForgeAttacker,
    Network,
    ReplayAttacker,
    SecureEndpoint,
    TamperAttacker,
)
from repro.sim.engine import Engine

KEY_BITS = 512


@pytest.fixture()
def net():
    return Network(Engine(), DeterministicRng(1), latency_ms=0.5)


@pytest.fixture()
def ca():
    return CertificateAuthority("pCA", HmacDrbg(7), key_bits=KEY_BITS)


def make_pair(net, ca, handler=None):
    """A connected (client, server) endpoint pair."""
    client = SecureEndpoint("alice", net, HmacDrbg(10), ca, key_bits=KEY_BITS)
    server = SecureEndpoint("bob", net, HmacDrbg(11), ca, key_bits=KEY_BITS)
    server.handler = handler or (lambda peer, body: {"echo": body, "peer": peer})
    return client, server


class TestRsaEncryption:
    def test_roundtrip(self):
        keys = generate_keypair(HmacDrbg(1), bits=KEY_BITS)
        ciphertext = public_encrypt(keys.public, b"seed" * 8, HmacDrbg(2))
        assert private_decrypt(keys.private, ciphertext) == b"seed" * 8

    def test_tampered_ciphertext_rejected(self):
        keys = generate_keypair(HmacDrbg(1), bits=KEY_BITS)
        ciphertext = bytearray(public_encrypt(keys.public, b"s" * 32, HmacDrbg(2)))
        ciphertext[10] ^= 0x01
        with pytest.raises(CryptoError):
            private_decrypt(keys.private, bytes(ciphertext))

    def test_message_too_long_rejected(self):
        keys = generate_keypair(HmacDrbg(1), bits=KEY_BITS)
        with pytest.raises(CryptoError):
            public_encrypt(keys.public, b"x" * 60, HmacDrbg(2))

    def test_ciphertext_hides_message(self):
        keys = generate_keypair(HmacDrbg(1), bits=KEY_BITS)
        assert b"seed" not in public_encrypt(keys.public, b"seed" * 4, HmacDrbg(2))


class TestNetwork:
    def test_rpc_roundtrip(self, net):
        net.register("server", lambda sender, req: req + b"!")
        assert net.rpc("client", "server", b"ping") == b"ping!"

    def test_latency_advances_clock(self, net):
        net.register("server", lambda sender, req: req)
        before = net.engine.now
        net.rpc("client", "server", b"x")
        # two wire crossings at ~0.5 ms each
        assert net.engine.now - before == pytest.approx(1.0, rel=0.3)

    def test_unknown_endpoint_rejected(self, net):
        with pytest.raises(NetworkError):
            net.rpc("client", "ghost", b"x")

    def test_duplicate_registration_rejected(self, net):
        net.register("server", lambda s, r: r)
        with pytest.raises(NetworkError):
            net.register("server", lambda s, r: r)

    def test_message_accounting(self, net):
        net.register("server", lambda s, r: b"ok")
        net.rpc("client", "server", b"abc")
        assert net.messages_sent == 2
        assert net.bytes_sent == 5

    def test_unregister(self, net):
        net.register("server", lambda s, r: r)
        net.unregister("server")
        with pytest.raises(NetworkError):
            net.rpc("client", "server", b"x")


class TestSecureChannel:
    def test_call_roundtrip(self, net, ca):
        client, _ = make_pair(net, ca)
        response = client.call("bob", {"ask": "health"})
        assert response["echo"] == {"ask": "health"}
        assert response["peer"] == "alice"

    def test_multiple_calls_reuse_channel(self, net, ca):
        client, _ = make_pair(net, ca)
        for i in range(5):
            assert client.call("bob", {"i": i})["echo"] == {"i": i}

    def test_bidirectional_independent_channels(self, net, ca):
        client, server = make_pair(net, ca)
        client.handler = lambda peer, body: {"from-alice": True}
        assert server.call("alice", {})["from-alice"] is True
        assert client.call("bob", {"x": 1})["echo"] == {"x": 1}

    def test_missing_handler_rejected(self, net, ca):
        client = SecureEndpoint("alice", net, HmacDrbg(10), ca, key_bits=KEY_BITS)
        SecureEndpoint("bob", net, HmacDrbg(11), ca, key_bits=KEY_BITS)
        with pytest.raises(ProtocolError):
            client.call("bob", {})

    def test_untrusted_ca_rejected(self, net, ca):
        rogue_ca = CertificateAuthority("rogueCA", HmacDrbg(66), key_bits=KEY_BITS)
        client = SecureEndpoint("alice", net, HmacDrbg(10), rogue_ca, key_bits=KEY_BITS)
        server = SecureEndpoint("bob", net, HmacDrbg(11), ca, key_bits=KEY_BITS)
        server.handler = lambda peer, body: {}
        with pytest.raises(SignatureError):
            client.call("bob", {})


class TestAttackers:
    def test_eavesdropper_sees_only_ciphertext(self, net, ca):
        eavesdropper = Eavesdropper()
        net.install_attacker(eavesdropper)
        client, _ = make_pair(net, ca)
        client.call("bob", {"secret": "attestation-report-contents"})
        assert eavesdropper.captured
        assert not eavesdropper.saw_plaintext(b"attestation-report-contents")

    def test_tampered_record_rejected(self, net, ca):
        client, _ = make_pair(net, ca)
        client.call("bob", {"warmup": True})  # establish the channel first
        net.install_attacker(TamperAttacker(direction="response"))
        with pytest.raises((CryptoError, ReplayError, ProtocolError)):
            client.call("bob", {"ask": "health"})

    def test_replayed_response_rejected(self, net, ca):
        replayer = ReplayAttacker(direction="response")
        client, _ = make_pair(net, ca)
        client.call("bob", {"warmup": True})
        net.install_attacker(replayer)
        client.call("bob", {"ask": 1})  # captured
        replayer.arm(0)
        with pytest.raises((ReplayError, CryptoError)):
            client.call("bob", {"ask": 2})

    def test_forged_report_rejected(self, net, ca):
        from repro.crypto.encoding import encode

        client, _ = make_pair(net, ca)
        client.call("bob", {"warmup": True})
        forged = encode({"t": "data", "seq": 1, "sealed": b"\x00" * 80})
        net.install_attacker(ForgeAttacker(forged, direction="response"))
        with pytest.raises((CryptoError, ReplayError)):
            client.call("bob", {"ask": "health"})

    def test_dropped_message_surfaces_as_network_error(self, net, ca):
        client, _ = make_pair(net, ca)
        client.call("bob", {"warmup": True})
        net.install_attacker(DropAttacker(direction="request"))
        with pytest.raises(NetworkError):
            client.call("bob", {})

    def test_drop_every_validation(self):
        with pytest.raises(ValueError):
            DropAttacker(drop_every=0)

    def test_attacker_removal_restores_service(self, net, ca):
        client, _ = make_pair(net, ca)
        client.call("bob", {"warmup": True})
        net.install_attacker(DropAttacker())
        with pytest.raises(NetworkError):
            client.call("bob", {})
        net.install_attacker(None)
        # the failed exchange tore the channel down (TLS semantics), so
        # the next call re-handshakes transparently and succeeds
        assert client.call("bob", {"x": 1})["echo"] == {"x": 1}


class TestRehandshakeSeedUniqueness:
    """Regression: the handshake seed fork label must never repeat.

    The label used to be ``seed-{peer}-{len(self._channels)}``; after a
    channel teardown the channel count shrinks back, so a re-handshake
    could reuse the label of an earlier session. The label now carries a
    monotonically increasing per-peer handshake counter.
    """

    def test_rehandshake_after_record_failure_derives_fresh_key(self, net, ca):
        client, _ = make_pair(net, ca)
        client.call("bob", {"warmup": True})
        first_key = client._channels["bob"].key.material
        assert client._handshake_counts["bob"] == 1

        # injected record failure: the tampered response kills the
        # channel (TLS semantics), forcing a re-handshake on next call
        net.install_attacker(TamperAttacker(direction="response"))
        with pytest.raises((CryptoError, ReplayError, ProtocolError)):
            client.call("bob", {"ask": "health"})
        assert "bob" not in client._channels
        net.install_attacker(None)

        client.call("bob", {"after": "teardown"})
        second_key = client._channels["bob"].key.material
        # the fork label is unique per handshake, not per channel count
        assert client._handshake_counts["bob"] == 2
        assert second_key != first_key

    def test_handshake_counter_is_per_peer(self, net, ca):
        client, _ = make_pair(net, ca)
        carol = SecureEndpoint("carol", net, HmacDrbg(12), ca, key_bits=KEY_BITS)
        carol.handler = lambda peer, body: {"ok": True}
        client.call("bob", {"x": 1})
        client.call("carol", {"x": 1})
        assert client._handshake_counts == {"bob": 1, "carol": 1}
