"""The parallel shard executor must be invisible in the bytes.

ISSUE 10's contract: dispatching per-shard command batches to forked
worker processes is a *scheduling* change, never an observable one.
The determinism matrix here runs the same scenario — launches, a
cross-shard fleet attestation, a standing monitoring policy with
scheduler ticks, with and without injected network faults — under the
serial executor and under 2- and 8-worker forked executors, and asserts
byte-identical per-VM reports, cross-shard Merkle roots, policy
statuses, flight records, alert logs and metric snapshots. The rest of
the file pins the degradation ladder: knob-driven selection, workers=0
and fork-less hosts falling back to serial (with the
``shard_parallel.unavailable`` statistic), a worker crash degrading the
executor to ``serial-fallback`` mid-run without losing answers, and
mid-run ``add_shard`` / ``remove_shard`` staying equivalent to serial.
"""

from __future__ import annotations

import os

import pytest

from repro import SecurityProperty
from repro.common import procpool
from repro.crypto import fastpath
from repro.network import FaultInjector, FaultSpec
from repro.resilience import LEG_CONTROLLER_AS
from repro.shard import ShardPlane
from repro.shard.parallel import (
    ForkedShardExecutor,
    SerialShardExecutor,
    make_executor,
)

KEY_BITS = 512
SEED = 2029
RUNTIME = SecurityProperty.RUNTIME_INTEGRITY
NUM_VMS = 6
NUM_SHARDS = 3

#: the parent pid, captured at import time — worker children forked by
#: the executor see a different pid, which the crash helpers key on
MAIN_PID = os.getpid()

needs_fork = pytest.mark.skipif(
    not procpool.fork_available(), reason="requires the fork start method"
)


def _policy(vids):
    return {
        "name": "prod",
        "version": 1,
        "entities": [str(v) for v in vids],
        "checks": [{
            "name": "runtime",
            "property": "runtime_integrity",
            "period_ms": 2000.0,
            "staleness_budget_ms": 6000.0,
        }],
    }


def _build_plane(workers: int, faults: bool = False) -> ShardPlane:
    return ShardPlane(
        num_shards=NUM_SHARDS,
        seed=SEED,
        num_servers=2,
        num_pcpus=4,
        key_bits=KEY_BITS,
        telemetry_enabled=True,
        parallel=workers > 0,
        parallel_workers=workers,
    )


def _install_faults(shard):
    """One transient drop on the controller↔AS leg (resilience retry).

    Installed *after* launch — like ``tests/test_resilience.py`` — so
    the limit-bounded burst lands on the attestation rounds under test.
    Dispatched as an ``apply`` command so it runs inside the worker
    process actually executing the shard.
    """
    cloud = shard.cloud
    cloud.network.install_fault_injector(
        FaultInjector(
            cloud.rng.child("test-faults"),
            {LEG_CONTROLLER_AS: FaultSpec(drop=1.0, limit=1)},
        )
    )


def _scenario(workers: int, faults: bool) -> dict:
    """Run the full observable scenario under one executor shape."""
    with _build_plane(workers, faults) as plane:
        customer = plane.register_customer("alice")
        launches = [
            customer.launch_vm(
                "small", "cirros", properties=[RUNTIME],
                workload={"name": "idle"},
            )
            for _ in range(NUM_VMS)
        ]
        assert all(l.accepted for l in launches)
        if faults:
            for name in sorted(plane.shards):
                plane.executor.call(name, ("apply", _install_faults, ()))
        fleet = customer.attest_fleet([(l.vid, RUNTIME) for l in launches])
        customer.register_policy(_policy([l.vid for l in launches]))
        plane.run_for(6000.0)
        status = customer.policy_status()
        plane_status = plane.status()
        # the executor descriptor differs by construction (mode, worker
        # count, shard assignment) — everything else must not
        plane_status.pop("executor")
        shards = sorted(plane.shards)
        return {
            "mode": plane.executor.mode,
            "plane_status": plane_status,
            "launch_reports": [l.report.to_dict() for l in launches],
            "fleet_reports": [r.report.to_dict() for r in fleet.results],
            "shard_roots": fleet.shard_roots,
            "root": fleet.root,
            "by_shard": fleet.by_shard,
            "policy_entries": status["entries"],
            "flight_records": {
                name: [
                    r.to_dict()
                    for r in plane.shards[name].cloud.observatory.flight_records()
                ]
                for name in shards
            },
            "events": {
                name: plane.shards[name].cloud.observatory.event_records()
                for name in shards
            },
            "alerts": {
                name: plane.shards[name].cloud.observatory.alert_records()
                for name in shards
            },
            "metrics": {
                name: plane.shards[name].cloud.telemetry.snapshot_json()
                for name in shards
            },
        }


# ----------------------------------------------------------------------
# the determinism matrix: workers ∈ {serial, 2, 8} × faults on/off
# ----------------------------------------------------------------------

class TestDeterminismMatrix:
    _baselines: dict = {}

    @classmethod
    def _baseline(cls, faults: bool) -> dict:
        if faults not in cls._baselines:
            cls._baselines[faults] = _scenario(workers=0, faults=faults)
        return cls._baselines[faults]

    def test_serial_baseline_runs_serial(self):
        assert self._baseline(False)["mode"] == "serial"

    @needs_fork
    @pytest.mark.parametrize("workers", [2, 8])
    @pytest.mark.parametrize("faults", [False, True],
                             ids=["clean", "faults"])
    def test_parallel_matches_serial_byte_for_byte(self, workers, faults):
        baseline = self._baseline(faults)
        result = _scenario(workers=workers, faults=faults)
        assert result["mode"] == "parallel"
        # compare key by key for a readable failure, then in full
        for key in baseline:
            if key == "mode":
                continue
            assert result[key] == baseline[key], key
        assert {k: v for k, v in result.items() if k != "mode"} == {
            k: v for k, v in baseline.items() if k != "mode"
        }


# ----------------------------------------------------------------------
# executor selection and graceful degradation
# ----------------------------------------------------------------------

class TestExecutorSelection:
    @needs_fork
    def test_fastpath_knobs_drive_the_executor(self):
        with fastpath.overridden(shard_parallel=True,
                                 shard_parallel_workers=2):
            with _build_plane(workers=0, faults=False) as plane:
                # workers=0 → parallel=False explicit argument wins
                assert isinstance(plane.executor, SerialShardExecutor)
            with ShardPlane(num_shards=2, seed=SEED, num_servers=1,
                            key_bits=KEY_BITS) as plane:
                # None knobs read the fast-path configuration
                assert isinstance(plane.executor, ForkedShardExecutor)
                assert plane.executor.mode == "parallel"
        with ShardPlane(num_shards=2, seed=SEED, num_servers=1,
                        key_bits=KEY_BITS) as plane:
            assert isinstance(plane.executor, SerialShardExecutor)

    def test_workers_zero_request_is_serial(self):
        with ShardPlane(num_shards=2, seed=SEED, num_servers=1,
                        key_bits=KEY_BITS, parallel=True,
                        parallel_workers=0) as plane:
            assert plane.executor.mode == "serial"

    def test_no_fork_host_degrades_and_records(self, monkeypatch):
        monkeypatch.setattr(procpool, "fork_available", lambda: False)
        fastpath.reset_stats()
        with ShardPlane(num_shards=2, seed=SEED, num_servers=1,
                        key_bits=KEY_BITS, parallel=True,
                        parallel_workers=2) as plane:
            assert plane.executor.mode == "serial"
        assert fastpath.stats().get("shard_parallel.unavailable") == 1

    @needs_fork
    def test_worker_cap_is_the_shard_count(self):
        with _build_plane(workers=8, faults=False) as plane:
            described = plane.executor.describe()
            assert described["workers"] == NUM_SHARDS
            assert described["requested_workers"] == 8
            assert sorted(described["assignment"]) == sorted(plane.shards)

    @needs_fork
    def test_status_surfaces_executor_mode(self):
        with _build_plane(workers=2, faults=False) as plane:
            plane.register_customer("alice")
            status = plane.status()
            assert status["executor"]["mode"] == "parallel"
            assert status["executor"]["workers"] == 2
        with _build_plane(workers=0, faults=False) as plane:
            assert plane.status()["executor"] == {
                "mode": "serial", "workers": 0,
            }


# ----------------------------------------------------------------------
# worker crash → serial fallback
# ----------------------------------------------------------------------

def _crash_in_worker(shard):
    """Kill the hosting process — unless it's the parent (the serial
    re-execution after fallback), where the command just succeeds."""
    if os.getpid() != MAIN_PID:
        os._exit(23)
    return "survived"


@needs_fork
class TestCrashFallback:
    def test_crash_degrades_to_serial_without_losing_answers(self):
        fastpath.reset_stats()
        with _build_plane(workers=2, faults=False) as plane:
            customer = plane.register_customer("alice")
            launches = [
                customer.launch_vm("small", "cirros", properties=[RUNTIME],
                                   workload={"name": "idle"})
                for _ in range(NUM_VMS)
            ]
            victim = sorted(plane.shards)[0]
            value = plane.executor.call(
                victim, ("apply", _crash_in_worker, ())
            )
            # the crashed command was re-executed serially in-parent
            assert value == "survived"
            assert plane.executor.mode == "serial-fallback"
            assert plane.status()["executor"]["mode"] == "serial-fallback"
            # the episode is visible on every telemetry surface
            assert fastpath.stats().get(
                "shard_parallel.crash_fallback") == 1
            crashes = plane.telemetry.metrics.counter(
                "shard.parallel.crashes"
            )
            assert crashes.total() == 1
            alerts = plane.telemetry.observatory.alert_records()
            assert any(a["rule"] == "shard_worker_crash" for a in alerts)
            # post-crash, the replayed mirrors serve byte-identical work
            fleet = customer.attest_fleet(
                [(l.vid, RUNTIME) for l in launches]
            )
        baseline = self._serial_fleet()
        assert [r.report.to_dict() for r in fleet.results] == baseline[0]
        assert fleet.root == baseline[1]

    @staticmethod
    def _serial_fleet():
        with _build_plane(workers=0, faults=False) as plane:
            customer = plane.register_customer("alice")
            launches = [
                customer.launch_vm("small", "cirros", properties=[RUNTIME],
                                   workload={"name": "idle"})
                for _ in range(NUM_VMS)
            ]
            fleet = customer.attest_fleet(
                [(l.vid, RUNTIME) for l in launches]
            )
            return [r.report.to_dict() for r in fleet.results], fleet.root


# ----------------------------------------------------------------------
# mid-run topology changes under the parallel executor
# ----------------------------------------------------------------------

@needs_fork
class TestParallelRebalance:
    @staticmethod
    def _rebalance_outcome(workers: int) -> dict:
        with _build_plane(workers, faults=False) as plane:
            customer = plane.register_customer("alice")
            launches = [
                customer.launch_vm("small", "cirros", properties=[RUNTIME],
                                   workload={"name": "idle"})
                for _ in range(8)
            ]
            added = plane.add_shard()
            removed = plane.remove_shard("shard-2")
            fleet = customer.attest_fleet(
                [(l.vid, RUNTIME) for l in launches]
            )
            return {
                "added": added.moved,
                "removed": removed.moved,
                "placement": dict(plane.placement),
                "reports": [r.report.to_dict() for r in fleet.results],
                "root": fleet.root,
                "shards": sorted(plane.shards),
            }

    def test_add_and_remove_shard_match_serial(self):
        serial = self._rebalance_outcome(workers=0)
        parallel = self._rebalance_outcome(workers=2)
        assert parallel == serial

    def test_released_shard_leaves_the_assignment(self):
        with _build_plane(workers=2, faults=False) as plane:
            plane.register_customer("alice")
            plane.remove_shard("shard-3")
            described = plane.executor.describe()
            assert "shard-3" not in described["assignment"]
            assert sorted(described["assignment"]) == sorted(plane.shards)
            # a freshly attached shard gets its own dedicated worker
            plane.add_shard()
            described = plane.executor.describe()
            assert sorted(described["assignment"]) == sorted(plane.shards)


# ----------------------------------------------------------------------
# make_executor is the single selection point
# ----------------------------------------------------------------------

def test_make_executor_explicit_arguments_win(monkeypatch):
    plane = object()  # the serial executor only stores the reference
    monkeypatch.setattr(procpool, "fork_available", lambda: False)
    fastpath.reset_stats()
    executor = make_executor(plane, parallel=False, workers=4)
    assert isinstance(executor, SerialShardExecutor)
    # parallel requested but the host cannot deliver it
    executor = make_executor(plane, parallel=True, workers=4)
    assert isinstance(executor, SerialShardExecutor)
    assert fastpath.stats().get("shard_parallel.unavailable") == 1
