"""Property-based tests over the secure channel: arbitrary protocol
bodies survive the full seal/wire/open round trip, and arbitrary wire
corruption never yields silently wrong data."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.errors import CloudMonattError
from repro.common.rng import DeterministicRng
from repro.crypto.certificates import CertificateAuthority
from repro.crypto.drbg import HmacDrbg
from repro.network import Network, SecureEndpoint
from repro.network.network import Envelope
from repro.sim.engine import Engine

KEY_BITS = 512

# body values restricted to the protocol data model
bodies = st.dictionaries(
    st.text(min_size=1, max_size=12),
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**64), max_value=2**64)
    | st.text(max_size=30)
    | st.binary(max_size=30)
    | st.lists(st.integers(min_value=0, max_value=255), max_size=6),
    max_size=6,
)


@pytest.fixture(scope="module")
def rig():
    engine = Engine()
    network = Network(engine, DeterministicRng(1), latency_ms=0.01)
    ca = CertificateAuthority("pCA", HmacDrbg(7), key_bits=KEY_BITS)
    client = SecureEndpoint("alice", network, HmacDrbg(10), ca, KEY_BITS)
    server = SecureEndpoint("bob", network, HmacDrbg(11), ca, KEY_BITS)
    server.handler = lambda peer, body: {"echo": body}
    return network, client


class TestRoundTrip:
    @settings(max_examples=40, suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(body=bodies)
    def test_arbitrary_bodies_echo_exactly(self, rig, body):
        _, client = rig
        assert client.call("bob", body)["echo"] == body


class _OneShotCorruptor:
    """Flips one byte of the next matching message, then goes passive."""

    def __init__(self, offset: int):
        self.offset = offset
        self.armed = True

    def process(self, envelope: Envelope):
        if not self.armed or envelope.direction != "response":
            return envelope.payload
        self.armed = False
        payload = bytearray(envelope.payload)
        payload[self.offset % len(payload)] ^= 0x40
        return bytes(payload)


class TestCorruption:
    @settings(max_examples=30, suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(body=bodies, offset=st.integers(min_value=0, max_value=10_000))
    def test_any_single_byte_flip_is_rejected_or_healed(self, rig, body, offset):
        """A flipped response byte must never produce a *wrong* result:
        either the call errors (and the channel re-handshakes), or — if
        the flip hit a bit the decoder normalizes — the data is intact."""
        network, client = rig
        client.call("bob", {"warm": True})  # ensure a channel exists
        network.install_attacker(_OneShotCorruptor(offset))
        try:
            result = client.call("bob", body)
        except CloudMonattError:
            pass  # rejected: the acceptable outcome
        else:
            assert result["echo"] == body, "corruption passed verification!"
        finally:
            network.install_attacker(None)
        # service always recovers
        assert client.call("bob", {"x": 1})["echo"] == {"x": 1}
