"""Tests for the baseline attestation schemes — including the concrete
demonstrations of their blind spots, which are the paper's §2.2 claims."""

import pytest

from repro import CloudMonatt, SecurityProperty
from repro.baselines import BinaryAttestationVerifier, VTpmAttestor
from repro.baselines.vtpm_attestation import verify_vtpm_quote
from repro.common.errors import SignatureError, StateError
from repro.common.identifiers import VmId
from repro.crypto.drbg import HmacDrbg
from repro.guest import GuestOS, Rootkit
from repro.monitors.integrity_unit import IntegrityMeasurementUnit, SoftwareInventory
from repro.tpm import TpmEmulator
from repro.tpm.pcr import PcrBank

VID = VmId("vm-0001")
NONCE = b"\x07" * 16


class TestVTpmBaselineMechanics:
    @pytest.fixture()
    def provisioned(self):
        attestor = VTpmAttestor(HmacDrbg(1))
        guest = GuestOS.with_standard_services("ubuntu")
        attestor.provision(VID, guest)
        return attestor, guest

    def test_quote_verifies(self, provisioned):
        attestor, _ = provisioned
        quote = attestor.attest(VID, NONCE)
        measurements = verify_vtpm_quote(attestor.aik_for(VID), quote, NONCE)
        assert any(t["name"] == "sshd" for t in measurements["task_list"])

    def test_forged_quote_rejected(self, provisioned):
        import dataclasses

        attestor, _ = provisioned
        quote = attestor.attest(VID, NONCE)
        forged = dataclasses.replace(
            quote, measurements={"task_list": [], "kernel_modules": [],
                                 "os_name_digest": "00"}
        )
        with pytest.raises(SignatureError):
            verify_vtpm_quote(attestor.aik_for(VID), forged, NONCE)

    def test_stale_nonce_rejected(self, provisioned):
        attestor, _ = provisioned
        quote = attestor.attest(VID, NONCE)
        with pytest.raises(SignatureError):
            verify_vtpm_quote(attestor.aik_for(VID), quote, b"\x08" * 16)

    def test_unprovisioned_vm_rejected(self, provisioned):
        attestor, _ = provisioned
        with pytest.raises(StateError):
            attestor.attest(VmId("ghost"), NONCE)
        with pytest.raises(StateError):
            attestor.aik_for(VmId("ghost"))

    def test_per_vm_aiks_distinct(self):
        attestor = VTpmAttestor(HmacDrbg(1))
        attestor.provision(VmId("a"), GuestOS("a"))
        attestor.provision(VmId("b"), GuestOS("b"))
        assert attestor.aik_for(VmId("a")) != attestor.aik_for(VmId("b"))


class TestVTpmBlindSpots:
    """The paper's critique, demonstrated."""

    def test_rootkit_fools_the_in_guest_agent(self):
        """The agent reports the inside view: the hidden malware is
        absent from a perfectly valid, perfectly signed quote."""
        attestor = VTpmAttestor(HmacDrbg(2))
        guest = GuestOS.with_standard_services("ubuntu")
        attestor.provision(VID, guest)
        Rootkit().infect(guest)
        quote = attestor.attest(VID, NONCE)
        measurements = verify_vtpm_quote(attestor.aik_for(VID), quote, NONCE)
        names = {t["name"] for t in measurements["task_list"]}
        assert "cryptominer" not in names  # the lie is signed and verified

    def test_cloudmonatt_catches_what_vtpm_misses(self):
        """Same infection, both schemes: CloudMonatt's VMI sees through."""
        cloud = CloudMonatt(num_servers=1, seed=51)
        alice = cloud.register_customer("alice")
        vm = alice.launch_vm(
            "small", "ubuntu",
            properties=[SecurityProperty.RUNTIME_INTEGRITY,
                        SecurityProperty.STARTUP_INTEGRITY],
        )
        server = cloud.server_of(vm.vid)
        guest = server.hosted[vm.vid].guest
        # baseline provisioned on the same guest
        attestor = VTpmAttestor(HmacDrbg(3))
        attestor.provision(vm.vid, guest)
        Rootkit().infect(guest)
        # vTPM baseline: clean bill of health
        quote = attestor.attest(vm.vid, NONCE)
        baseline_view = verify_vtpm_quote(attestor.aik_for(vm.vid), quote, NONCE)
        assert "cryptominer" not in {t["name"] for t in baseline_view["task_list"]}
        # CloudMonatt: detection
        verdict = alice.attest(vm.vid, SecurityProperty.RUNTIME_INTEGRITY)
        assert not verdict.report.healthy
        assert "cryptominer" in verdict.report.details["unknown_tasks"]

    def test_no_environment_visibility(self):
        attestor = VTpmAttestor(HmacDrbg(4))
        attestor.provision(VID, GuestOS("g"))
        with pytest.raises(StateError):
            attestor.attest_environment(VID)


class TestBinaryAttestationBaseline:
    @pytest.fixture()
    def rig(self):
        tpm = TpmEmulator(HmacDrbg(5), key_bits=512)
        unit = IntegrityMeasurementUnit(tpm)
        inventory = SoftwareInventory.pristine_platform()
        unit.measure_platform(inventory)
        verifier = BinaryAttestationVerifier()
        verifier.add_reference(
            IntegrityMeasurementUnit.expected_platform_value(inventory)
        )
        return tpm, verifier

    def test_pristine_platform_matches(self, rig):
        tpm, verifier = rig
        quote = verifier.challenge(tpm, PcrBank.PLATFORM_PCR, NONCE)
        verdict = verifier.appraise(
            quote, tpm.aik_public, PcrBank.PLATFORM_PCR, NONCE
        )
        assert verdict.matches_reference

    def test_tampered_platform_mismatches(self):
        tpm = TpmEmulator(HmacDrbg(6), key_bits=512)
        unit = IntegrityMeasurementUnit(tpm)
        tampered = SoftwareInventory.pristine_platform().tampered(
            "xen-hypervisor-4.2", b"backdoored"
        )
        unit.measure_platform(tampered)
        verifier = BinaryAttestationVerifier()
        verifier.add_reference(
            IntegrityMeasurementUnit.expected_platform_value(
                SoftwareInventory.pristine_platform()
            )
        )
        quote = verifier.challenge(tpm, PcrBank.PLATFORM_PCR, NONCE)
        verdict = verifier.appraise(
            quote, tpm.aik_public, PcrBank.PLATFORM_PCR, NONCE
        )
        assert not verdict.matches_reference

    def test_wrong_nonce_rejected(self, rig):
        tpm, verifier = rig
        quote = verifier.challenge(tpm, PcrBank.PLATFORM_PCR, NONCE)
        with pytest.raises(SignatureError):
            verifier.appraise(
                quote, tpm.aik_public, PcrBank.PLATFORM_PCR, b"\x01" * 16
            )

    def test_runtime_properties_out_of_scope(self, rig):
        _, verifier = rig
        for prop in BinaryAttestationVerifier.RUNTIME_PROPERTIES:
            with pytest.raises(StateError):
                verifier.appraise_runtime_property(prop)

    def test_unknown_property_rejected(self, rig):
        _, verifier = rig
        with pytest.raises(StateError):
            verifier.appraise_runtime_property("quantum_safety")
