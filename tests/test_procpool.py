"""The shared fork-pool plumbing under both of its consumers' shapes.

:mod:`repro.common.procpool` backs the keygen farm's short-lived
``map_forked`` batches and the shard executor's long-lived
:class:`~repro.common.procpool.PersistentWorker` pipes. The promises
pinned here: parallel maps return the serial results in the serial
order; fork-less hosts degrade to the serial loop and invoke the
fallback hook exactly once (which the keygen farm turns into the
``keygen_farm.serial_fallback`` statistic); persistent workers resolve
replies in any await order; and a dead worker surfaces as
:class:`~repro.common.procpool.WorkerCrashError` rather than a hang.
"""

from __future__ import annotations

import os

import pytest

from repro.common import procpool
from repro.crypto import fastpath
from repro.crypto import keygen_farm
from repro.crypto.drbg import HmacDrbg

needs_fork = pytest.mark.skipif(
    not procpool.fork_available(), reason="requires the fork start method"
)


def _square(value: int) -> int:
    return value * value


def _crash(_payload):
    os._exit(17)


# ----------------------------------------------------------------------
# map_forked
# ----------------------------------------------------------------------

class TestMapForked:
    def test_empty_task_list(self):
        assert procpool.map_forked(_square, []) == []

    def test_serial_single_worker(self):
        assert procpool.map_forked(_square, [1, 2, 3], workers=1) == [1, 4, 9]

    @needs_fork
    def test_parallel_matches_serial_in_order(self):
        tasks = list(range(8))
        serial = [_square(t) for t in tasks]
        assert procpool.map_forked(_square, tasks, workers=2) == serial

    def test_fallback_hook_fires_once_without_fork(self, monkeypatch):
        monkeypatch.setattr(procpool, "fork_available", lambda: False)
        calls = []
        result = procpool.map_forked(
            _square, [2, 3], workers=4, on_fallback=lambda: calls.append(1)
        )
        assert result == [4, 9]
        assert calls == [1]

    def test_single_worker_requests_skip_the_hook(self):
        calls = []
        procpool.map_forked(
            _square, [2], workers=1, on_fallback=lambda: calls.append(1)
        )
        assert calls == []


def test_resolve_workers_clamps_to_jobs():
    assert procpool.resolve_workers(8, 3) == 3
    assert procpool.resolve_workers(2, 8) == 2
    assert procpool.resolve_workers(0, 4) >= 1  # CPU-count default
    assert procpool.resolve_workers(4, 0) == 1  # never zero


# ----------------------------------------------------------------------
# PersistentWorker
# ----------------------------------------------------------------------

@needs_fork
class TestPersistentWorker:
    def test_round_trip_and_out_of_order_awaits(self):
        worker = procpool.PersistentWorker(_square, name="test-square")
        try:
            first = worker.submit(3)
            second = worker.submit(4)
            third = worker.submit(5)
            # replies buffer until their sequence number is awaited
            assert worker.result(third) == 25
            assert worker.result(first) == 9
            assert worker.result(second) == 16
            assert worker.call(6) == 36
            assert worker.alive
        finally:
            worker.close()
        assert not worker.alive

    def test_crash_surfaces_as_worker_crash_error(self):
        worker = procpool.PersistentWorker(_crash, name="test-crash")
        try:
            seq = worker.submit("boom")
            with pytest.raises(procpool.WorkerCrashError):
                worker.result(seq)
            assert not worker.alive
            with pytest.raises(procpool.WorkerCrashError):
                worker.submit("again")
        finally:
            worker.close()

    def test_close_is_idempotent(self):
        worker = procpool.PersistentWorker(_square, name="test-close")
        worker.close()
        worker.close()
        with pytest.raises(procpool.WorkerCrashError):
            worker.submit(1)


def test_persistent_worker_requires_fork(monkeypatch):
    monkeypatch.setattr(procpool, "fork_available", lambda: False)
    with pytest.raises(procpool.WorkerCrashError):
        procpool.PersistentWorker(_square)


# ----------------------------------------------------------------------
# the keygen farm rides the shared plumbing
# ----------------------------------------------------------------------

class TestKeygenFarmFallback:
    def test_forkless_batch_matches_serial_and_records(self, monkeypatch):
        serial = [
            (kp.private.n, kp.private.d)
            for kp in keygen_farm.generate_batch(
                [HmacDrbg(7, f"farm-{i}") for i in range(3)],
                bits=512, workers=1,
            )
        ]
        monkeypatch.setattr(procpool, "fork_available", lambda: False)
        fastpath.reset_stats()
        degraded = keygen_farm.generate_batch(
            [HmacDrbg(7, f"farm-{i}") for i in range(3)],
            bits=512, workers=4,
        )
        assert [(kp.private.n, kp.private.d) for kp in degraded] == serial
        assert fastpath.stats().get("keygen_farm.serial_fallback") == 1

    def test_farm_config_reports_host_shape(self):
        config = keygen_farm.farm_config()
        if procpool.fork_available():
            assert config == {
                "cpus": os.cpu_count() or 1, "start_method": "fork",
            }
        else:
            assert config is None
