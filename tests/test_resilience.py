"""The deterministic fault-tolerance layer (src/repro/resilience/).

Three tiers of coverage:

1. **Unit** — retry policy schedules, circuit-breaker state machine on a
   fake clock, protocol-leg classification, fault-spec validation.
2. **Recovery** — a seeded *transient* fault (drop / timeout-delay /
   corruption) on any single Fig. 3 leg is absorbed: the customer's
   final verified report is byte-identical to the fault-free run's.
3. **Degradation** — a *persistent* fault never forges health and never
   escapes as an exception: the customer receives a degraded
   ``UNREACHABLE`` verdict, the controller's circuit breaker opens, and
   the system recovers once the fault clears and the reset window ends.

Determinism is asserted end to end: two same-seed faulted runs export
byte-identical telemetry (identical retry schedules, counters, events).
"""

import dataclasses

import pytest

from repro import CloudMonatt, SecurityProperty
from repro.common.errors import (
    ConfigurationError,
    NetworkError,
    ProtocolError,
    RecordError,
    ReplayError,
    SignatureError,
    StateError,
    UnknownEndpointError,
)
from repro.crypto.drbg import HmacDrbg
from repro.network import FaultInjector, FaultSpec
from repro.resilience import (
    DEFAULT_LEG_TIMEOUTS_MS,
    LEG_AS_SERVER,
    LEG_CONTROLLER_AS,
    LEG_CONTROLLER_SERVER,
    LEG_CUSTOMER_CONTROLLER,
    PROTOCOL_LEGS,
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
    RetryExecutor,
    RetryPolicy,
    is_transient,
    leg_of,
)
from repro.sim.engine import Engine


# ----------------------------------------------------------------------
# unit: transient classification
# ----------------------------------------------------------------------


class TestIsTransient:
    @pytest.mark.parametrize(
        "exc",
        [
            NetworkError("dropped"),
            RecordError("malformed data record"),
            SignatureError("bad signature"),
            ReplayError("nonce replayed"),
        ],
    )
    def test_transient(self, exc):
        assert is_transient(exc)

    @pytest.mark.parametrize(
        "exc",
        [
            UnknownEndpointError("no endpoint"),
            ProtocolError("unknown flavor"),
            StateError("VM not placed"),
        ],
    )
    def test_not_transient(self, exc):
        assert not is_transient(exc)


# ----------------------------------------------------------------------
# unit: retry policy
# ----------------------------------------------------------------------


class TestRetryPolicy:
    def test_schedule_without_jitter(self):
        policy = RetryPolicy(base_delay_ms=40.0, multiplier=2.0, jitter=0.0)
        assert [policy.backoff_ms(k, 0.0) for k in (1, 2, 3)] == [40.0, 80.0, 160.0]

    def test_delay_is_capped(self):
        policy = RetryPolicy(base_delay_ms=40.0, max_delay_ms=100.0, jitter=0.0)
        assert policy.backoff_ms(10, 0.0) == 100.0

    def test_jitter_bounds(self):
        policy = RetryPolicy(base_delay_ms=100.0, jitter=0.25)
        assert policy.backoff_ms(1, 0.0) == 100.0
        assert policy.backoff_ms(1, 1.0) == pytest.approx(125.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay_ms": -1.0},
            {"multiplier": 0.5},
            {"jitter": 1.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)


class TestRetryExecutor:
    def _executor(self, policy=None, seed=7):
        engine = Engine()
        return RetryExecutor(
            engine=engine, drbg=HmacDrbg(seed, "test-retry"), policy=policy
        )

    def test_succeeds_after_transient_failures(self):
        executor = self._executor()
        calls = []

        def flaky():
            calls.append(executor.engine.now)
            if len(calls) < 3:
                raise NetworkError("dropped")
            return "ok"

        assert executor.run(flaky) == "ok"
        assert len(calls) == 3
        # each retry paid real (simulated) backoff time
        assert calls[0] == 0.0
        assert calls[1] > calls[0]
        assert calls[2] > calls[1]

    def test_non_transient_raises_immediately(self):
        executor = self._executor()
        calls = []

        def wrong():
            calls.append(1)
            raise ProtocolError("deterministic failure")

        with pytest.raises(ProtocolError):
            executor.run(wrong)
        assert len(calls) == 1
        assert executor.engine.now == 0.0

    def test_exhaustion_raises_last_error(self):
        executor = self._executor(policy=RetryPolicy(max_attempts=2))
        with pytest.raises(NetworkError):
            executor.run(lambda: (_ for _ in ()).throw(NetworkError("always")))

    def test_same_seed_same_backoff_schedule(self):
        def schedule(executor):
            times = []

            def always_fails():
                times.append(executor.engine.now)
                raise NetworkError("dropped")

            with pytest.raises(NetworkError):
                executor.run(always_fails)
            return times

        first = schedule(self._executor(seed=13))
        second = schedule(self._executor(seed=13))
        other = schedule(self._executor(seed=14))
        assert first == second
        assert first != other  # jitter really comes from the seed


# ----------------------------------------------------------------------
# unit: circuit breaker
# ----------------------------------------------------------------------


class TestCircuitBreaker:
    def _breaker(self, **kwargs):
        clock = {"now": 0.0}
        breaker = CircuitBreaker(clock=lambda: clock["now"], **kwargs)
        return breaker, clock

    def test_opens_at_threshold(self):
        breaker, _ = self._breaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == STATE_CLOSED
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        assert not breaker.allow()

    def test_success_resets_failure_count(self):
        breaker, _ = self._breaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == STATE_CLOSED

    def test_half_open_after_reset_window(self):
        breaker, clock = self._breaker(failure_threshold=1, reset_after_ms=1000.0)
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        clock["now"] = 999.0
        assert not breaker.allow()
        clock["now"] = 1000.0
        assert breaker.state == STATE_HALF_OPEN
        assert breaker.allow()

    def test_probe_success_closes(self):
        breaker, clock = self._breaker(failure_threshold=1, reset_after_ms=1000.0)
        breaker.record_failure()
        clock["now"] = 1000.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == STATE_CLOSED
        assert breaker.failures == 0

    def test_probe_failure_reopens_for_a_fresh_window(self):
        breaker, clock = self._breaker(failure_threshold=1, reset_after_ms=1000.0)
        breaker.record_failure()
        clock["now"] = 1000.0
        assert breaker.state == STATE_HALF_OPEN
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        clock["now"] = 1999.0
        assert not breaker.allow()
        clock["now"] = 2000.0
        assert breaker.allow()

    def test_transition_callback_sees_every_edge(self):
        transitions = []
        clock = {"now": 0.0}
        breaker = CircuitBreaker(
            clock=lambda: clock["now"],
            failure_threshold=1,
            reset_after_ms=1000.0,
            on_transition=lambda old, new: transitions.append((old, new)),
        )
        breaker.record_failure()
        clock["now"] = 1000.0
        _ = breaker.state
        breaker.record_success()
        assert transitions == [
            (STATE_CLOSED, STATE_OPEN),
            (STATE_OPEN, STATE_HALF_OPEN),
            (STATE_HALF_OPEN, STATE_CLOSED),
        ]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(clock=lambda: 0.0, failure_threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(clock=lambda: 0.0, reset_after_ms=0.0)


# ----------------------------------------------------------------------
# unit: leg classification and fault specs
# ----------------------------------------------------------------------


class TestLegClassification:
    @pytest.mark.parametrize(
        ("sender", "receiver", "leg"),
        [
            ("alice", "controller", LEG_CUSTOMER_CONTROLLER),
            ("controller", "alice", LEG_CUSTOMER_CONTROLLER),
            ("controller", "attestation-server", LEG_CONTROLLER_AS),
            ("controller", "attestation-server-2", LEG_CONTROLLER_AS),
            ("attestation-server", "server-0001", LEG_AS_SERVER),
            ("server-0002", "attestation-server-1", LEG_AS_SERVER),
            ("controller", "server-0001", LEG_CONTROLLER_SERVER),
        ],
    )
    def test_attestation_path_legs(self, sender, receiver, leg):
        assert leg_of(sender, receiver) == leg

    @pytest.mark.parametrize(
        ("sender", "receiver"),
        [
            ("server-0001", "pca"),  # enrollment is trusted setup
            ("alice", "bob"),  # no customer-to-customer leg exists
        ],
    )
    def test_off_path_traffic_is_unclassified(self, sender, receiver):
        assert leg_of(sender, receiver) is None

    def test_default_timeouts_cover_every_leg(self):
        assert set(DEFAULT_LEG_TIMEOUTS_MS) == set(PROTOCOL_LEGS)


class TestFaultSpec:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"drop": 1.5},
            {"corrupt": -0.1},
            {"delay_ms": -5.0},
            {"direction": "sideways"},
            {"limit": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultSpec(**kwargs)

    def test_limit_bounds_total_faults(self):
        from repro.common.rng import DeterministicRng

        injector = FaultInjector(
            DeterministicRng(3), {LEG_CONTROLLER_AS: FaultSpec(drop=1.0, limit=2)}
        )
        envelope = _FakeEnvelope(direction="request")
        outcomes = [
            injector.apply(LEG_CONTROLLER_AS, envelope, b"payload")[0]
            for _ in range(4)
        ]
        assert outcomes == [None, None, b"payload", b"payload"]
        assert injector.total_injected() == 2


@dataclasses.dataclass
class _FakeEnvelope:
    direction: str = "request"


# ----------------------------------------------------------------------
# full stack: transient faults are absorbed byte-identically
# ----------------------------------------------------------------------

SEED = 2015
ATTEST_LEGS = (LEG_CUSTOMER_CONTROLLER, LEG_CONTROLLER_AS, LEG_AS_SERVER)

TRANSIENT_SPECS = {
    "drop": FaultSpec(drop=1.0, limit=1),
    # injected delay far beyond the 10 s leg budget: forces a
    # deterministic LegTimeoutError, then a clean retry
    "timeout": FaultSpec(delay=1.0, delay_ms=30_000.0, limit=1),
    # one flipped byte: the record layer rejects it and the next
    # attempt re-handshakes the channel automatically
    "corrupt": FaultSpec(corrupt=1.0, limit=1),
}


def _attest_report(cloud, fault_leg=None, spec=None):
    """Launch one VM and attest it, optionally under a fault plan.

    The injector is installed *after* launch so the (limit-bounded)
    fault burst lands on the attestation round under test, not on some
    launch-time crossing.
    """
    alice = cloud.register_customer("alice")
    vm = alice.launch_vm(
        "small", "ubuntu", properties=[SecurityProperty.STARTUP_INTEGRITY]
    )
    assert vm.accepted
    if fault_leg is not None:
        cloud.network.install_fault_injector(
            FaultInjector(cloud.rng.child("test-faults"), {fault_leg: spec})
        )
    result = alice.attest(vm.vid, SecurityProperty.STARTUP_INTEGRITY)
    return result, cloud.network.fault_injector


@pytest.fixture(scope="module")
def baseline_report():
    result, _ = _attest_report(CloudMonatt(num_servers=2, seed=SEED))
    assert result.report.healthy
    return result.report


class TestTransientFaultRecovery:
    @pytest.mark.parametrize("kind", sorted(TRANSIENT_SPECS))
    @pytest.mark.parametrize("leg", ATTEST_LEGS)
    def test_single_fault_yields_byte_identical_report(
        self, leg, kind, baseline_report
    ):
        cloud = CloudMonatt(num_servers=2, seed=SEED)
        result, injector = _attest_report(
            cloud, fault_leg=leg, spec=TRANSIENT_SPECS[kind]
        )
        # the fault actually fired...
        assert injector.total_injected(leg) == 1
        # ...and the retry/re-handshake machinery absorbed it completely
        assert not result.degraded
        assert result.report == baseline_report

    def test_transient_fault_emits_retry_telemetry(self):
        cloud = CloudMonatt(num_servers=2, seed=SEED, telemetry_enabled=True)
        result, _ = _attest_report(
            cloud, fault_leg=LEG_CONTROLLER_AS, spec=FaultSpec(drop=1.0, limit=1)
        )
        assert result.report.healthy
        retries = cloud.telemetry.metrics.counter("resilience.retries")
        assert retries.value(site="controller.attest") >= 1


# ----------------------------------------------------------------------
# full stack: persistent faults degrade, never forge
# ----------------------------------------------------------------------


class TestPersistentFaultDegradation:
    def test_dark_attestation_server_degrades_to_unreachable(self):
        cloud = CloudMonatt(num_servers=2, seed=SEED)
        result, _ = _attest_report(
            cloud, fault_leg=LEG_CONTROLLER_AS, spec=FaultSpec(drop=1.0)
        )
        # the controller signed a degraded report; it verifies normally
        assert not result.report.healthy
        assert result.report.details.get("verdict") == "UNREACHABLE"
        # the controller's breaker opened against the dark AS
        assert cloud.controller.attest_service.breaker_state() == STATE_OPEN

    def test_dark_controller_degrades_locally(self):
        cloud = CloudMonatt(num_servers=2, seed=SEED)
        result, _ = _attest_report(
            cloud, fault_leg=LEG_CUSTOMER_CONTROLLER, spec=FaultSpec(drop=1.0)
        )
        assert result.degraded
        assert not result.report.healthy
        assert result.report.details.get("verdict") == "UNREACHABLE"

    def test_degraded_verdict_never_triggers_remediation(self):
        cloud = CloudMonatt(num_servers=2, seed=SEED)
        alice = cloud.register_customer("alice")
        vm = alice.launch_vm(
            "small", "ubuntu", properties=[SecurityProperty.STARTUP_INTEGRITY]
        )
        placed_on = cloud.controller.database.vm(vm.vid).server
        cloud.network.install_fault_injector(
            FaultInjector(
                cloud.rng.child("test-faults"),
                {LEG_CONTROLLER_AS: FaultSpec(drop=1.0)},
            )
        )
        result = alice.attest(vm.vid, SecurityProperty.STARTUP_INTEGRITY)
        assert not result.report.healthy
        # UNREACHABLE is not a verdict on the VM: no migration, no kill
        assert cloud.controller.database.vm(vm.vid).server == placed_on

    def test_breaker_recovers_after_fault_clears(self):
        cloud = CloudMonatt(num_servers=2, seed=SEED)
        alice = cloud.register_customer("alice")
        vm = alice.launch_vm(
            "small", "ubuntu", properties=[SecurityProperty.STARTUP_INTEGRITY]
        )
        cloud.network.install_fault_injector(
            FaultInjector(
                cloud.rng.child("test-faults"),
                {LEG_CONTROLLER_AS: FaultSpec(drop=1.0)},
            )
        )
        degraded = alice.attest(vm.vid, SecurityProperty.STARTUP_INTEGRITY)
        assert not degraded.report.healthy
        assert cloud.controller.attest_service.breaker_state() == STATE_OPEN

        cloud.network.install_fault_injector(None)
        # circuit still open: served degraded without touching the AS
        still_open = alice.attest(vm.vid, SecurityProperty.STARTUP_INTEGRITY)
        assert not still_open.report.healthy
        assert still_open.report.details.get("breaker_state") == STATE_OPEN

        # after the reset window a half-open probe succeeds and closes it
        cloud.run_for(61_000.0)
        recovered = alice.attest(vm.vid, SecurityProperty.STARTUP_INTEGRITY)
        assert recovered.report.healthy
        assert cloud.controller.attest_service.breaker_state() == STATE_CLOSED

    def test_degraded_report_carries_last_known_health(self):
        cloud = CloudMonatt(num_servers=2, seed=SEED, telemetry_enabled=True)
        result, _ = _attest_report(
            cloud, fault_leg=LEG_CONTROLLER_AS, spec=FaultSpec(drop=1.0)
        )
        assert not result.report.healthy
        last_known = result.report.details.get("last_known_health")
        assert last_known is not None
        assert "server" in last_known and "score" in last_known


# ----------------------------------------------------------------------
# batched rounds: faults hit the logical round, never the shared batch
# ----------------------------------------------------------------------


class TestFleetFaultIsolation:
    def test_dark_as_degrades_every_round_in_the_batch(self):
        cloud = CloudMonatt(num_servers=2, seed=SEED)
        alice = cloud.register_customer("alice")
        vids = [
            alice.launch_vm(
                "small", "ubuntu",
                properties=[SecurityProperty.STARTUP_INTEGRITY],
            ).vid
            for _ in range(3)
        ]
        cloud.network.install_fault_injector(
            FaultInjector(
                cloud.rng.child("test-faults"),
                {LEG_CONTROLLER_AS: FaultSpec(drop=1.0)},
            )
        )
        results = alice.attest_fleet(
            [(vid, SecurityProperty.STARTUP_INTEGRITY) for vid in vids]
        )
        # a dead batch leg never fate-shares: every member round gets
        # its own signed degraded report, and the breaker opened
        assert len(results) == 3
        for result in results:
            assert not result.report.healthy
            assert result.report.details.get("verdict") == "UNREACHABLE"
        assert cloud.controller.attest_service.breaker_state() == STATE_OPEN

        # circuit already open: the next batch degrades immediately,
        # without touching the dark AS again
        again = alice.attest_fleet(
            [(vid, SecurityProperty.STARTUP_INTEGRITY) for vid in vids]
        )
        assert all(
            r.report.details.get("verdict") == "UNREACHABLE" for r in again
        )


# ----------------------------------------------------------------------
# determinism: same seed, same fault plan, same everything
# ----------------------------------------------------------------------


class TestDeterminism:
    def _faulted_run(self):
        cloud = CloudMonatt(num_servers=2, seed=SEED, telemetry_enabled=True)
        result, _ = _attest_report(
            cloud,
            fault_leg=LEG_CONTROLLER_AS,
            spec=FaultSpec(drop=0.5, corrupt=0.25, limit=4),
        )
        return cloud, result

    def test_same_seed_runs_are_byte_identical(self):
        cloud_a, result_a = self._faulted_run()
        cloud_b, result_b = self._faulted_run()
        assert result_a.report == result_b.report
        # identical retry schedules, counters and breaker transitions
        assert cloud_a.telemetry.snapshot_json() == cloud_b.telemetry.snapshot_json()
        assert (
            cloud_a.observatory.event_records()
            == cloud_b.observatory.event_records()
        )
        assert cloud_a.now == cloud_b.now
