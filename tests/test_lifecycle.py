"""Tests for lifecycle states, flavors, and the cost model."""

import pytest

from repro.common.errors import ConfigurationError, StateError
from repro.common.identifiers import CustomerId, ServerId, VmId
from repro.common.rng import DeterministicRng
from repro.lifecycle import (
    CostModel,
    VmRecord,
    VmState,
    default_flavors,
    default_images,
)
from repro.sim.engine import Engine


def record() -> VmRecord:
    return VmRecord(
        vid=VmId("vm-1"), customer=CustomerId("alice"), flavor="small",
        image="cirros",
    )


class TestVmStateMachine:
    def test_happy_path(self):
        r = record()
        r.transition(VmState.SCHEDULED)
        r.transition(VmState.ACTIVE)
        r.transition(VmState.SUSPENDED)
        r.transition(VmState.ACTIVE)
        r.transition(VmState.MIGRATING)
        r.transition(VmState.ACTIVE)
        r.transition(VmState.TERMINATED)

    def test_cannot_activate_from_requested(self):
        with pytest.raises(StateError):
            record().transition(VmState.ACTIVE)

    def test_terminated_is_final(self):
        r = record()
        r.transition(VmState.SCHEDULED)
        r.transition(VmState.ACTIVE)
        r.transition(VmState.TERMINATED)
        with pytest.raises(StateError):
            r.transition(VmState.ACTIVE)

    def test_rejected_is_final(self):
        r = record()
        r.transition(VmState.REJECTED)
        with pytest.raises(StateError):
            r.transition(VmState.SCHEDULED)

    def test_cannot_migrate_while_suspended(self):
        r = record()
        r.transition(VmState.SCHEDULED)
        r.transition(VmState.ACTIVE)
        r.transition(VmState.SUSPENDED)
        with pytest.raises(StateError):
            r.transition(VmState.MIGRATING)

    def test_live_reflects_state(self):
        r = record()
        assert not r.live
        r.transition(VmState.SCHEDULED)
        r.transition(VmState.ACTIVE)
        assert r.live
        r.transition(VmState.SUSPENDED)
        assert r.live
        r.transition(VmState.TERMINATED)
        assert not r.live


class TestFlavorsAndImages:
    def test_three_flavors(self):
        flavors = default_flavors()
        assert set(flavors) == {"small", "medium", "large"}
        assert flavors["small"].vcpus < flavors["large"].vcpus
        assert flavors["small"].memory_mb < flavors["large"].memory_mb

    def test_three_images(self):
        images = default_images()
        assert set(images) == {"cirros", "fedora", "ubuntu"}
        assert images["cirros"].size_mb < images["ubuntu"].size_mb

    def test_image_contents_distinct(self):
        contents = {image.content for image in default_images().values()}
        assert len(contents) == 3

    def test_images_carry_standard_services(self):
        image = default_images()["ubuntu"]
        assert "sshd" in image.standard_tasks
        assert "ext4" in image.standard_modules


class TestCostModel:
    @pytest.fixture()
    def cost(self):
        return CostModel(engine=Engine(), rng=DeterministicRng(5))

    def test_charge_advances_clock(self, cost):
        before = cost.engine.now
        duration = cost.charge("networking")
        assert cost.engine.now == pytest.approx(before + duration)

    def test_charge_is_jittered_but_close(self, cost):
        base = cost.costs_ms["networking"]
        duration = cost.charge("networking")
        assert abs(duration - base) <= base * cost.jitter * 1.01

    def test_scale_multiplies(self, cost):
        small = cost.charge("image_fetch_per_mb", scale=10)
        large = cost.charge("image_fetch_per_mb", scale=1000)
        assert large > 50 * small

    def test_unknown_operation_rejected(self, cost):
        with pytest.raises(ConfigurationError):
            cost.charge("warp_drive")

    def test_accounting_accumulates(self, cost):
        cost.charge("db_access")
        cost.charge("db_access")
        assert cost.charged_ms["db_access"] > 0
        cost.reset_accounting()
        assert cost.charged_ms == {}

    def test_set_cost_override(self, cost):
        cost.set_cost("db_access", 0.0)
        assert cost.charge("db_access") == 0.0

    def test_negative_cost_rejected(self, cost):
        with pytest.raises(ConfigurationError):
            cost.set_cost("db_access", -1.0)
