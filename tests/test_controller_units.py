"""Unit tests for the Cloud Controller's modules (database, scheduler)."""

import pytest

from repro.common.errors import PlacementError, StateError
from repro.common.identifiers import CustomerId, ServerId, VmId
from repro.controller.database import NovaDatabase, ServerInfo
from repro.controller.scheduler import NovaScheduler
from repro.lifecycle.flavors import default_flavors
from repro.lifecycle.states import VmRecord, VmState
from repro.monitors.monitor_module import (
    MEAS_CPU_USAGE,
    MEAS_PLATFORM_INTEGRITY,
    MEAS_TASK_LIST,
    MEAS_VM_IMAGE_INTEGRITY,
)
from repro.properties.catalog import PropertyCatalog, SecurityProperty

FLAVORS = default_flavors()
ALL_MEASUREMENTS = {
    MEAS_PLATFORM_INTEGRITY, MEAS_VM_IMAGE_INTEGRITY, MEAS_TASK_LIST,
    MEAS_CPU_USAGE,
}


def server_info(sid: str, capabilities=None, num_pcpus=4) -> ServerInfo:
    return ServerInfo(
        server_id=ServerId(sid),
        num_pcpus=num_pcpus,
        memory_mb=32768,
        capabilities=set(ALL_MEASUREMENTS if capabilities is None else capabilities),
    )


def vm_record(vid: str, server: str, flavor="small", state=VmState.ACTIVE) -> VmRecord:
    record = VmRecord(
        vid=VmId(vid), customer=CustomerId("alice"), flavor=flavor, image="cirros",
    )
    record.server = ServerId(server)
    record.state = state
    return record


class TestNovaDatabase:
    @pytest.fixture()
    def db(self):
        db = NovaDatabase(flavors=FLAVORS)
        db.register_server(server_info("s1"))
        db.register_server(server_info("s2"))
        return db

    def test_server_lookup(self, db):
        assert db.server(ServerId("s1")).num_pcpus == 4
        with pytest.raises(StateError):
            db.server(ServerId("ghost"))

    def test_vm_crud(self, db):
        db.add_vm(vm_record("v1", "s1"))
        assert db.vm(VmId("v1")).server == ServerId("s1")
        with pytest.raises(StateError):
            db.add_vm(vm_record("v1", "s1"))
        with pytest.raises(StateError):
            db.vm(VmId("ghost"))

    def test_allocation_views(self, db):
        db.add_vm(vm_record("v1", "s1", flavor="large"))
        db.add_vm(vm_record("v2", "s1", flavor="small"))
        db.add_vm(vm_record("v3", "s2", flavor="medium"))
        assert db.allocated_vcpus(ServerId("s1")) == 4 + 1
        assert db.allocated_memory_mb(ServerId("s1")) == 8192 + 2048
        assert db.allocated_vcpus(ServerId("s2")) == 2

    def test_dead_vms_release_allocation(self, db):
        db.add_vm(vm_record("v1", "s1", flavor="large", state=VmState.TERMINATED))
        assert db.allocated_vcpus(ServerId("s1")) == 0

    def test_fits_respects_capacity(self, db):
        # s1 capacity is 16 vcpus (4 pcpus x 4 overcommit)
        for index in range(3):
            db.add_vm(vm_record(f"v{index}", "s1", flavor="large"))
        assert db.fits(ServerId("s1"), FLAVORS["large"])  # 12 + 4 = 16
        db.add_vm(vm_record("v4", "s1", flavor="large"))
        assert not db.fits(ServerId("s1"), FLAVORS["small"])  # 16 + 1 > 16

    def test_fits_respects_memory(self):
        db = NovaDatabase(flavors=FLAVORS)
        db.register_server(
            ServerInfo(server_id=ServerId("tiny"), num_pcpus=8, memory_mb=4096)
        )
        assert db.fits(ServerId("tiny"), FLAVORS["small"])
        assert not db.fits(ServerId("tiny"), FLAVORS["large"])


class TestNovaScheduler:
    @pytest.fixture()
    def db(self):
        db = NovaDatabase(flavors=FLAVORS)
        db.register_server(server_info("secure-1"))
        db.register_server(server_info("secure-2"))
        db.register_server(server_info("legacy", capabilities=[]))
        return db

    @pytest.fixture()
    def scheduler(self, db):
        return NovaScheduler(db, PropertyCatalog())

    def test_balances_by_free_resources(self, db, scheduler):
        db.add_vm(vm_record("v1", "secure-1", flavor="large"))
        chosen = scheduler.select_server(FLAVORS["small"], [])
        # legacy and secure-2 are both empty; deterministic tie-break
        assert chosen in {ServerId("secure-2"), ServerId("legacy")}

    def test_property_filter_excludes_legacy(self, db, scheduler):
        for _ in range(4):  # fill secure servers' tie-break order anyway
            pass
        chosen = scheduler.select_server(
            FLAVORS["small"], [SecurityProperty.STARTUP_INTEGRITY]
        )
        assert chosen in {ServerId("secure-1"), ServerId("secure-2")}

    def test_exclude_set_honored(self, db, scheduler):
        chosen = scheduler.select_server(
            FLAVORS["small"],
            [SecurityProperty.STARTUP_INTEGRITY],
            exclude={ServerId("secure-1")},
        )
        assert chosen == ServerId("secure-2")

    def test_no_qualified_server_raises(self, db, scheduler):
        with pytest.raises(PlacementError):
            scheduler.select_server(
                FLAVORS["small"],
                [SecurityProperty.STARTUP_INTEGRITY],
                exclude={ServerId("secure-1"), ServerId("secure-2")},
            )

    def test_capacity_filter(self, db, scheduler):
        for sid in ("secure-1", "secure-2", "legacy"):
            for index in range(4):
                db.add_vm(vm_record(f"{sid}-{index}", sid, flavor="large"))
        with pytest.raises(PlacementError):
            scheduler.select_server(FLAVORS["small"], [])

    def test_required_measurements_union(self, scheduler):
        needed = scheduler.required_measurements(
            [SecurityProperty.STARTUP_INTEGRITY, SecurityProperty.CPU_AVAILABILITY]
        )
        assert MEAS_PLATFORM_INTEGRITY in needed
        assert MEAS_CPU_USAGE in needed
