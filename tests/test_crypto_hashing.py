"""Tests for hashing helpers and TPM-style hash chains."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.hashing import DIGEST_SIZE, HashChain, sha256, sha256_hex


class TestSha256:
    def test_digest_size(self):
        assert len(sha256("x")) == DIGEST_SIZE

    def test_deterministic(self):
        assert sha256({"a": 1}) == sha256({"a": 1})

    def test_multi_arg_differs_from_concat(self):
        assert sha256("a", "bc") != sha256("ab", "c")

    def test_multi_arg_equals_list(self):
        assert sha256("a", "b") == sha256(["a", "b"])

    def test_hex_matches_bytes(self):
        assert bytes.fromhex(sha256_hex("x")) == sha256("x")


class TestHashChain:
    def test_initial_value_is_zero(self):
        assert HashChain().value == b"\x00" * DIGEST_SIZE

    def test_extend_changes_value(self):
        chain = HashChain()
        before = chain.value
        chain.extend(b"m1")
        assert chain.value != before

    def test_order_matters(self):
        a, b = HashChain(), HashChain()
        a.extend(b"x")
        a.extend(b"y")
        b.extend(b"y")
        b.extend(b"x")
        assert a.value != b.value

    def test_replay_matches_live_chain(self):
        chain = HashChain()
        measurements = [b"hypervisor", b"host-os", b"vm-image"]
        for m in measurements:
            chain.extend(m)
        assert HashChain.replay(measurements) == chain.value

    def test_history_records_order(self):
        chain = HashChain()
        chain.extend(b"a")
        chain.extend(b"b")
        assert chain.history == (b"a", b"b")

    def test_bad_initial_size_rejected(self):
        with pytest.raises(ValueError):
            HashChain(b"short")

    @given(st.lists(st.binary(max_size=16), min_size=1, max_size=8))
    def test_any_extension_changes_value(self, measurements):
        chain = HashChain()
        seen = {chain.value}
        for m in measurements:
            chain.extend(m)
            assert chain.value not in seen
            seen.add(chain.value)
