"""Monitoring-policy documents and alarm state machines.

Two promises pinned here. First, a malformed policy document dies at
validation time with a :class:`PolicyError` naming the offending field
— never as a mid-run crash inside the scheduler. Second, the
OK/WARNING/CRITICAL alarm machine implements exactly the documented
transition relation: the exhaustive test enumerates *every* verdict
sequence up to length 6 against an independent reference model, so any
drift in the hysteresis semantics fails loudly.
"""

from __future__ import annotations

import itertools

import pytest

from repro.common.errors import PolicyError
from repro.policy import (
    ALARM_CRITICAL,
    ALARM_OK,
    ALARM_WARNING,
    AlarmStateMachine,
    CheckSpec,
    MonitoringPolicy,
    NotificationRouting,
    VERDICT_HEALTHY,
    VERDICT_UNHEALTHY,
    VERDICT_UNREACHABLE,
)
from repro.properties.catalog import PropertyCatalog, SecurityProperty


def _doc(**overrides) -> dict:
    document = {
        "name": "prod",
        "version": 1,
        "entities": ["vm-0001"],
        "checks": [{
            "name": "runtime",
            "property": "runtime_integrity",
            "period_ms": 1000.0,
            "staleness_budget_ms": 3000.0,
        }],
    }
    document.update(overrides)
    return document


def _check(**overrides) -> dict:
    check = {
        "name": "runtime",
        "property": "runtime_integrity",
        "period_ms": 1000.0,
        "staleness_budget_ms": 3000.0,
    }
    check.update(overrides)
    return check


class TestPolicyValidation:
    def test_round_trip_through_dict(self):
        policy = MonitoringPolicy.from_dict(_doc())
        assert MonitoringPolicy.from_dict(policy.to_dict()) == policy

    def test_unknown_property_is_a_policy_error(self):
        with pytest.raises(PolicyError, match="unknown property 'disk_quota'"):
            MonitoringPolicy.from_dict(
                _doc(checks=[_check(property="disk_quota")])
            )

    def test_unknown_property_names_the_known_ones(self):
        with pytest.raises(PolicyError, match="runtime_integrity"):
            MonitoringPolicy.from_dict(_doc(checks=[_check(property="nope")]))

    @pytest.mark.parametrize("period", [0, -5.0])
    def test_non_positive_period_is_a_policy_error(self, period):
        with pytest.raises(PolicyError, match="period_ms must be positive"):
            MonitoringPolicy.from_dict(_doc(checks=[_check(period_ms=period)]))

    def test_budget_below_period_is_a_policy_error(self):
        with pytest.raises(PolicyError, match="staleness_budget_ms"):
            MonitoringPolicy.from_dict(
                _doc(checks=[_check(period_ms=5000.0,
                                    staleness_budget_ms=1000.0)])
            )

    def test_version_below_one_is_a_policy_error(self):
        with pytest.raises(PolicyError, match="version must be >= 1"):
            MonitoringPolicy.from_dict(_doc(version=0))

    def test_duplicate_check_names_rejected(self):
        with pytest.raises(PolicyError, match="duplicate check names"):
            MonitoringPolicy.from_dict(_doc(checks=[_check(), _check()]))

    def test_empty_entities_rejected(self):
        with pytest.raises(PolicyError, match="entities must be non-empty"):
            MonitoringPolicy.from_dict(_doc(entities=[]))

    def test_empty_checks_rejected(self):
        with pytest.raises(PolicyError, match="checks must be non-empty"):
            MonitoringPolicy.from_dict(_doc(checks=[]))

    def test_threshold_ordering_enforced(self):
        with pytest.raises(PolicyError, match="critical_after"):
            MonitoringPolicy.from_dict(
                _doc(checks=[_check(warning_after=4, critical_after=2)])
            )

    def test_missing_required_field_is_a_policy_error(self):
        bad = _doc()
        del bad["checks"][0]["period_ms"]
        with pytest.raises(PolicyError, match="period_ms"):
            MonitoringPolicy.from_dict(bad)

    def test_unknown_notification_field_rejected(self):
        with pytest.raises(PolicyError, match="unknown fields"):
            MonitoringPolicy.from_dict(_doc(notifications={"pager": True}))

    def test_catalog_validation_accepts_served_properties(self):
        policy = MonitoringPolicy.from_dict(_doc())
        policy.validate(PropertyCatalog())

    def test_defaults_fill_thresholds_and_routing(self):
        policy = MonitoringPolicy.from_dict(_doc())
        check = policy.check("runtime")
        assert (check.warning_after, check.critical_after,
                check.clear_after) == (2, 4, 2)
        assert policy.notifications == NotificationRouting()
        assert check.prop is SecurityProperty.RUNTIME_INTEGRITY


# ----------------------------------------------------------------------
# alarm hysteresis: exhaustive transition-table check
# ----------------------------------------------------------------------


class ReferenceAlarm:
    """Independent re-statement of the documented transition relation.

    Deliberately written as a flat transition table rather than sharing
    any code with the production class, so a bug in one cannot hide in
    the other.
    """

    def __init__(self, warning_after, critical_after, clear_after):
        self.w, self.c, self.k = warning_after, critical_after, clear_after
        self.state = ALARM_OK
        self.fails = 0
        self.healths = 0

    def step(self, verdict):
        if verdict == VERDICT_UNHEALTHY:
            self.fails += 1
            self.healths = 0
            rank = {ALARM_OK: 0, ALARM_WARNING: 1, ALARM_CRITICAL: 2}
            if self.fails >= self.c:
                computed = ALARM_CRITICAL
            elif self.fails >= self.w:
                computed = ALARM_WARNING
            else:
                computed = ALARM_OK
            if rank[computed] > rank[self.state]:
                self.state = computed
        elif verdict == VERDICT_HEALTHY:
            self.fails = 0
            self.healths += 1
            if self.healths >= self.k:
                self.state = ALARM_OK
        else:  # unreachable: state and failure streak hold
            self.healths = 0
        return self.state


VERDICTS = (VERDICT_HEALTHY, VERDICT_UNHEALTHY, VERDICT_UNREACHABLE)
THRESHOLDS = [(1, 1, 1), (1, 2, 1), (2, 4, 2), (2, 3, 1), (3, 3, 2)]


class TestAlarmHysteresisExhaustive:
    @pytest.mark.parametrize("thresholds", THRESHOLDS)
    def test_all_sequences_up_to_length_six(self, thresholds):
        checked = 0
        for length in range(1, 7):
            for sequence in itertools.product(VERDICTS, repeat=length):
                machine = AlarmStateMachine(*thresholds)
                reference = ReferenceAlarm(*thresholds)
                for verdict in sequence:
                    machine.observe(verdict)
                    assert machine.state == reference.step(verdict), (
                        f"diverged on {sequence} at thresholds {thresholds}"
                    )
                assert machine.failure_streak == reference.fails
                assert machine.healthy_streak == reference.healths
                checked += 1
        assert checked == sum(3 ** n for n in range(1, 7))  # 1092 sequences

    def test_transitions_reported_exactly_when_state_changes(self):
        for sequence in itertools.product(VERDICTS, repeat=5):
            machine = AlarmStateMachine(2, 3, 2)
            previous = machine.state
            for verdict in sequence:
                change = machine.observe(verdict)
                if machine.state != previous:
                    assert change == (previous, machine.state)
                else:
                    assert change is None
                previous = machine.state


class TestAlarmHysteresisPointCases:
    def test_single_flap_does_not_page(self):
        machine = AlarmStateMachine(2, 4, 2)
        assert machine.observe(VERDICT_UNHEALTHY) is None
        assert machine.state == ALARM_OK

    def test_streak_escalates_warning_then_critical(self):
        machine = AlarmStateMachine(2, 4, 2)
        machine.observe(VERDICT_UNHEALTHY)
        assert machine.observe(VERDICT_UNHEALTHY) == (ALARM_OK, ALARM_WARNING)
        machine.observe(VERDICT_UNHEALTHY)
        assert machine.observe(VERDICT_UNHEALTHY) == (
            ALARM_WARNING, ALARM_CRITICAL)

    def test_one_healthy_round_never_clears(self):
        machine = AlarmStateMachine(1, 2, 2)
        machine.observe(VERDICT_UNHEALTHY)
        assert machine.state == ALARM_WARNING
        assert machine.observe(VERDICT_HEALTHY) is None
        assert machine.state == ALARM_WARNING
        assert machine.observe(VERDICT_HEALTHY) == (ALARM_WARNING, ALARM_OK)

    def test_failure_never_downgrades_a_raised_state(self):
        machine = AlarmStateMachine(1, 2, 2)
        machine.observe(VERDICT_UNHEALTHY)
        machine.observe(VERDICT_UNHEALTHY)
        assert machine.state == ALARM_CRITICAL
        machine.observe(VERDICT_HEALTHY)  # resets the failure streak
        machine.observe(VERDICT_UNHEALTHY)  # streak 1 -> computes WARNING
        assert machine.state == ALARM_CRITICAL

    def test_unreachable_holds_state_and_blocks_clearing(self):
        machine = AlarmStateMachine(1, 2, 2)
        machine.observe(VERDICT_UNHEALTHY)
        assert machine.state == ALARM_WARNING
        machine.observe(VERDICT_HEALTHY)
        assert machine.observe(VERDICT_UNREACHABLE) is None
        # the unreachable round reset the healthy streak: one more
        # healthy round is NOT enough to clear now
        assert machine.observe(VERDICT_HEALTHY) is None
        assert machine.observe(VERDICT_HEALTHY) == (ALARM_WARNING, ALARM_OK)

    def test_retune_keeps_state_and_streaks(self):
        machine = AlarmStateMachine(2, 4, 2)
        machine.observe(VERDICT_UNHEALTHY)
        machine.observe(VERDICT_UNHEALTHY)
        assert machine.state == ALARM_WARNING
        machine.retune(2, 3, 1)
        assert machine.state == ALARM_WARNING
        assert machine.failure_streak == 2
        assert machine.observe(VERDICT_UNHEALTHY) == (
            ALARM_WARNING, ALARM_CRITICAL)

    def test_unknown_verdict_rejected(self):
        with pytest.raises(PolicyError, match="unknown verdict"):
            AlarmStateMachine(1, 1, 1).observe("flaky")

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(PolicyError):
            AlarmStateMachine(0, 1, 1)
        with pytest.raises(PolicyError):
            AlarmStateMachine(2, 1, 1)


class TestCheckSpecDirect:
    def test_window_passes_through(self):
        check = CheckSpec.from_dict(_check(window_ms=250.0))
        assert check.window_ms == 250.0

    def test_non_positive_window_rejected(self):
        with pytest.raises(PolicyError, match="window_ms"):
            CheckSpec.from_dict(_check(window_ms=0.0))
