"""Tests for the TPM emulator and Trust Module."""

import pytest

from repro.common.errors import SignatureError, StateError
from repro.crypto.drbg import HmacDrbg
from repro.crypto.signatures import verify
from repro.tpm import PcrBank, TpmEmulator, TrustModule
from repro.tpm.tpm_emulator import verify_quote
from repro.tpm.trust_module import NUM_EVIDENCE_REGISTERS

KEY_BITS = 512


@pytest.fixture()
def tpm():
    return TpmEmulator(HmacDrbg(11), key_bits=KEY_BITS)


@pytest.fixture()
def trust_module():
    return TrustModule(HmacDrbg(22), key_bits=KEY_BITS)


class TestPcrBank:
    def test_initial_values_zero(self):
        bank = PcrBank()
        assert bank.read(0) == PcrBank.zero()

    def test_extend_changes_value(self):
        bank = PcrBank()
        bank.extend(0, b"m")
        assert bank.read(0) != PcrBank.zero()

    def test_registers_independent(self):
        bank = PcrBank()
        bank.extend(0, b"m")
        assert bank.read(1) == PcrBank.zero()

    def test_snapshot_keys_are_strings(self):
        bank = PcrBank()
        snap = bank.snapshot([0, 8])
        assert set(snap) == {"0", "8"}

    def test_log_records_extensions(self):
        bank = PcrBank()
        bank.extend(3, b"a")
        bank.extend(3, b"b")
        assert bank.log(3) == (b"a", b"b")

    def test_reset(self):
        bank = PcrBank()
        bank.extend(5, b"x")
        bank.reset(5)
        assert bank.read(5) == PcrBank.zero()

    def test_out_of_range_rejected(self):
        bank = PcrBank(count=4)
        with pytest.raises(StateError):
            bank.read(4)
        with pytest.raises(StateError):
            bank.extend(-1, b"x")


class TestTpmEmulator:
    def test_quote_verifies(self, tpm):
        tpm.extend(0, b"hypervisor")
        quote = tpm.quote([0], nonce=b"n" * 16)
        verify_quote(tpm.aik_public, quote, expected_nonce=b"n" * 16)

    def test_quote_wrong_nonce_rejected(self, tpm):
        quote = tpm.quote([0], nonce=b"n" * 16)
        with pytest.raises(SignatureError):
            verify_quote(tpm.aik_public, quote, expected_nonce=b"m" * 16)

    def test_quote_tampered_pcr_rejected(self, tpm):
        import dataclasses

        quote = tpm.quote([0], nonce=b"n" * 16)
        forged = dataclasses.replace(
            quote, pcr_values={"0": b"\xff" * 32}
        )
        with pytest.raises(SignatureError):
            verify_quote(tpm.aik_public, forged, expected_nonce=b"n" * 16)

    def test_quote_reflects_extensions(self, tpm):
        before = tpm.quote([0], nonce=b"n" * 16)
        tpm.extend(0, b"new software")
        after = tpm.quote([0], nonce=b"n" * 16)
        assert before.pcr_values != after.pcr_values


class TestTrustModule:
    def test_session_keys_fresh_per_request(self, trust_module):
        a = trust_module.new_attestation_session()
        b = trust_module.new_attestation_session()
        assert a.public != b.public

    def test_endorsement_verifies_with_identity_key(self, trust_module):
        session = trust_module.new_attestation_session()
        verify(
            trust_module.identity_public,
            session.public.to_dict(),
            session.endorsement,
        )

    def test_session_signature_verifies(self, trust_module):
        session = trust_module.new_attestation_session()
        payload = {"measurement": 42}
        signature = trust_module.sign_with_session(session, payload)
        verify(session.public, payload, signature)

    def test_registers_read_write(self, trust_module):
        trust_module.write_register(3, 7.5)
        assert trust_module.read_registers()[3] == 7.5

    def test_register_increment(self, trust_module):
        trust_module.increment_register(0)
        trust_module.increment_register(0, 2.0)
        assert trust_module.read_registers(1) == [3.0]

    def test_register_bounds(self, trust_module):
        with pytest.raises(StateError):
            trust_module.write_register(NUM_EVIDENCE_REGISTERS, 1.0)
        with pytest.raises(StateError):
            trust_module.increment_register(-1)
        with pytest.raises(StateError):
            trust_module.read_registers(0)

    def test_clear_registers(self, trust_module):
        trust_module.write_register(1, 9.0)
        trust_module.clear_registers()
        assert all(v == 0.0 for v in trust_module.read_registers())

    def test_evidence_storage(self, trust_module):
        trust_module.store_evidence("task_list", [{"pid": 1}])
        assert trust_module.load_evidence("task_list") == [{"pid": 1}]

    def test_missing_evidence_rejected(self, trust_module):
        with pytest.raises(StateError):
            trust_module.load_evidence("absent")

    def test_nonce_generator_available(self, trust_module):
        assert trust_module.nonce_generator.fresh() != trust_module.nonce_generator.fresh()
