"""Property-based invariants of the credit-scheduler simulation.

Whatever workload mix runs, physics must hold: one vCPU per pCPU at a
time, no CPU time created from nothing, run intervals well-formed and
non-overlapping, credits bounded by the cap.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.identifiers import VmId
from repro.common.rng import DeterministicRng
from repro.xen import (
    CREDIT_CAP,
    CpuBoundWorkload,
    FiniteCpuBoundWorkload,
    Hypervisor,
    IdleWorkload,
    IoBoundWorkload,
    PhasedWorkload,
)

WORKLOAD_KINDS = ["cpu", "io", "phased", "idle", "finite"]


def build_workload(kind: str, rng: DeterministicRng):
    if kind == "cpu":
        return CpuBoundWorkload()
    if kind == "io":
        return IoBoundWorkload(rng, burst_ms=1.5, wait_ms=7.0)
    if kind == "phased":
        return PhasedWorkload(rng, cpu_fraction=0.4)
    if kind == "idle":
        return IdleWorkload()
    return FiniteCpuBoundWorkload(300.0)


class _IntervalCollector:
    def __init__(self):
        self.by_pcpu: dict[int, list[tuple[float, float]]] = {}

    def on_switch(self, time, pcpu, prev, nxt):
        pass

    def on_run_interval(self, vcpu, start, end):
        self.by_pcpu.setdefault(vcpu.pcpu, []).append((start, end))


@settings(max_examples=15, deadline=None)
@given(
    kinds=st.lists(st.sampled_from(WORKLOAD_KINDS), min_size=1, max_size=5),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_no_cpu_time_invented(kinds, seed):
    """Total CPU consumed <= wall time x pCPUs, and per-domain <= wall."""
    hv = Hypervisor(num_pcpus=2)
    rng = DeterministicRng(seed)
    for index, kind in enumerate(kinds):
        hv.create_domain(
            VmId(f"vm-{index}"),
            build_workload(kind, rng.child(str(index))),
            pcpus=[index % 2],
        )
    duration = 2000.0
    hv.run_for(duration)
    total = sum(
        vcpu.runtime_until(hv.now)
        for dom in hv.domains.values()
        for vcpu in dom.vcpus
    )
    assert total <= duration * hv.num_pcpus + 1e-6
    for dom in hv.domains.values():
        for vcpu in dom.vcpus:
            assert 0.0 <= vcpu.runtime_until(hv.now) <= duration + 1e-6


@settings(max_examples=15, deadline=None)
@given(
    kinds=st.lists(st.sampled_from(WORKLOAD_KINDS), min_size=2, max_size=4),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_run_intervals_well_formed_and_disjoint(kinds, seed):
    """Per pCPU, recorded run intervals never overlap and have end>start."""
    hv = Hypervisor(num_pcpus=1)
    collector = _IntervalCollector()
    hv.add_monitor(collector)
    rng = DeterministicRng(seed)
    for index, kind in enumerate(kinds):
        hv.create_domain(
            VmId(f"vm-{index}"), build_workload(kind, rng.child(str(index)))
        )
    hv.run_for(1500.0)
    for intervals in collector.by_pcpu.values():
        ordered = sorted(intervals)
        for start, end in ordered:
            assert end > start
        for (s1, e1), (s2, e2) in zip(ordered, ordered[1:]):
            assert e1 <= s2 + 1e-9, "run intervals overlap on one pCPU"


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_credits_bounded_by_cap(seed):
    hv = Hypervisor()
    rng = DeterministicRng(seed)
    hv.create_domain(VmId("a"), CpuBoundWorkload())
    hv.create_domain(VmId("b"), IoBoundWorkload(rng, burst_ms=1.0, wait_ms=5.0))
    for _ in range(20):
        hv.run_for(100.0)
        for dom in hv.domains.values():
            for vcpu in dom.vcpus:
                assert -CREDIT_CAP - 1e-9 <= vcpu.credits <= CREDIT_CAP + 1e-9


@settings(max_examples=10, deadline=None)
@given(
    demand=st.floats(min_value=50.0, max_value=800.0),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_finite_workload_consumes_exactly_its_demand(demand, seed):
    hv = Hypervisor()
    rng = DeterministicRng(seed)
    dom = hv.create_domain(VmId("prog"), FiniteCpuBoundWorkload(demand))
    hv.create_domain(VmId("noise"), IoBoundWorkload(rng, burst_ms=1.0, wait_ms=6.0))
    hv.run_until_domain_finishes(VmId("prog"), max_ms=100_000.0)
    assert dom.cumulative_runtime == pytest.approx(demand, abs=0.5)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_determinism_same_seed_same_outcome(seed):
    """Two identical runs produce identical CPU accounting."""

    def run() -> list[float]:
        hv = Hypervisor(num_pcpus=2)
        rng = DeterministicRng(seed)
        hv.create_domain(VmId("a"), CpuBoundWorkload(), pcpus=[0])
        hv.create_domain(
            VmId("b"), IoBoundWorkload(rng.child("io"), burst_ms=1.0, wait_ms=4.0),
            pcpus=[0],
        )
        hv.create_domain(
            VmId("c"), PhasedWorkload(rng.child("ph"), cpu_fraction=0.5), pcpus=[1]
        )
        hv.run_for(3000.0)
        return [
            vcpu.runtime_until(hv.now)
            for dom in sorted(hv.domains.values(), key=lambda d: d.vid)
            for vcpu in dom.vcpus
        ]

    assert run() == run()
