"""Tests for the paper's extension features: per-cluster attestation
servers (§3.2.3) and raw measurement pass-through (§4.1)."""

import pytest

from repro import CloudMonatt, SecurityProperty
from repro.common.errors import StateError
from repro.controller.response import ResponseAction
from repro.monitors.monitor_module import MEAS_CPU_USAGE, MEAS_TASK_LIST


class TestMultipleAttestationServers:
    @pytest.fixture()
    def cloud(self):
        return CloudMonatt(num_servers=4, seed=71, num_attestation_servers=2)

    def test_servers_distributed_round_robin(self, cloud):
        clusters = [
            cloud.controller.database.server(sid).attestation_server
            for sid in cloud.servers
        ]
        assert clusters == [
            "attestation-server-1", "attestation-server-2",
            "attestation-server-1", "attestation-server-2",
        ]

    def test_each_as_knows_only_its_cluster(self, cloud):
        as1, as2 = cloud.attestation_servers
        sids = list(cloud.servers)
        assert as1.database.knows_server(sids[0])
        assert not as1.database.knows_server(sids[1])
        assert as2.database.knows_server(sids[1])

    def test_attestation_routes_to_the_right_cluster(self, cloud):
        alice = cloud.register_customer("alice")
        vms = [
            alice.launch_vm(
                "small", "cirros",
                properties=[SecurityProperty.STARTUP_INTEGRITY],
            )
            for _ in range(4)
        ]
        assert all(vm.accepted for vm in vms)
        # both attestation servers performed work
        as1, as2 = cloud.attestation_servers
        assert as1.database.log and as2.database.log

    def test_runtime_attestation_across_clusters(self, cloud):
        alice = cloud.register_customer("alice")
        vms = [
            alice.launch_vm(
                "small", "ubuntu",
                properties=[SecurityProperty.RUNTIME_INTEGRITY,
                            SecurityProperty.STARTUP_INTEGRITY],
            )
            for _ in range(4)
        ]
        for vm in vms:
            result = alice.attest(vm.vid, SecurityProperty.RUNTIME_INTEGRITY)
            assert result.report.healthy

    def test_migration_across_clusters_reregisters(self, cloud):
        """A VM migrating to a server in another cluster must remain
        attestable there (references re-registered at the new AS)."""
        cloud.controller.response.set_policy(
            SecurityProperty.CPU_AVAILABILITY, ResponseAction.MIGRATE
        )
        alice = cloud.register_customer("alice")
        victim = alice.launch_vm(
            "small", "ubuntu",
            properties=[SecurityProperty.CPU_AVAILABILITY,
                        SecurityProperty.RUNTIME_INTEGRITY],
            workload={"name": "cpu_bound"},
            pins=[0],
        )
        source = cloud.controller.database.vm(victim.vid).server
        alice.launch_vm(
            "medium", "ubuntu",
            workload={"name": "cpu_availability_attack"},
            pins=[0, 0],
            force_server=str(source),
        )
        attacked = alice.attest(victim.vid, SecurityProperty.CPU_AVAILABILITY)
        assert attacked.response["action"] == "migrate"
        destination = cloud.controller.database.vm(victim.vid).server
        assert destination != source
        # the destination cluster's AS can interpret runtime integrity
        verdict = alice.attest(victim.vid, SecurityProperty.RUNTIME_INTEGRITY)
        assert verdict.report.healthy

    def test_at_least_one_as_required(self):
        with pytest.raises(StateError):
            CloudMonatt(num_servers=1, seed=1, num_attestation_servers=0)


class TestRawPassThrough:
    @pytest.fixture()
    def setup(self):
        cloud = CloudMonatt(num_servers=2, seed=81)
        alice = cloud.register_customer("alice")
        vm = alice.launch_vm(
            "small", "ubuntu",
            properties=[SecurityProperty.RUNTIME_INTEGRITY,
                        SecurityProperty.CPU_AVAILABILITY,
                        SecurityProperty.STARTUP_INTEGRITY],
            workload={"name": "cpu_bound"},
        )
        return cloud, alice, vm

    def test_raw_task_list(self, setup):
        _, alice, vm = setup
        measurements = alice.collect_raw_measurements(
            vm.vid, SecurityProperty.RUNTIME_INTEGRITY
        )
        names = {t["name"] for t in measurements[MEAS_TASK_LIST]}
        assert "sshd" in names

    def test_raw_cpu_usage(self, setup):
        _, alice, vm = setup
        measurements = alice.collect_raw_measurements(
            vm.vid, SecurityProperty.CPU_AVAILABILITY, window_ms=500.0
        )
        usage = measurements[MEAS_CPU_USAGE]
        assert usage["cpu_ms"] / usage["wall_ms"] == pytest.approx(1.0, abs=0.05)

    def test_raw_mode_is_uninterpreted(self, setup):
        """The pass-through response carries measurements, not verdicts —
        the customer does the interpretation."""
        _, alice, vm = setup
        measurements = alice.collect_raw_measurements(
            vm.vid, SecurityProperty.RUNTIME_INTEGRITY
        )
        assert "healthy" not in measurements
        assert set(measurements) == {MEAS_TASK_LIST, "vmi.kernel_modules"}

    def test_raw_mode_signature_chain_verified(self, setup):
        """Verification happens inside collect_raw_measurements; a
        successful return implies the Q1/Q2/Q3 chain checked out."""
        _, alice, vm = setup
        # two consecutive calls use fresh nonces and both verify
        first = alice.collect_raw_measurements(
            vm.vid, SecurityProperty.RUNTIME_INTEGRITY
        )
        second = alice.collect_raw_measurements(
            vm.vid, SecurityProperty.RUNTIME_INTEGRITY
        )
        assert first == second  # same healthy guest, same tasks
