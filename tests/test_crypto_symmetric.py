"""Tests for authenticated symmetric encryption, KDF, nonces, certificates."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import CryptoError, ReplayError, SignatureError
from repro.crypto.certificates import CertificateAuthority, verify_certificate
from repro.crypto.drbg import HmacDrbg
from repro.crypto.kdf import hkdf
from repro.crypto.nonces import NONCE_SIZE, Nonce, NonceCache, NonceGenerator
from repro.crypto.rsa import generate_keypair
from repro.crypto.signatures import sign
from repro.crypto.symmetric import SymmetricKey, open_sealed, seal

KEY = SymmetricKey(b"\x11" * 32)
NONCE = b"\x22" * 16


class TestSymmetric:
    def test_roundtrip(self):
        assert open_sealed(KEY, seal(KEY, b"attestation report", NONCE)) == b"attestation report"

    def test_empty_plaintext(self):
        assert open_sealed(KEY, seal(KEY, b"", NONCE)) == b""

    def test_ciphertext_differs_from_plaintext(self):
        sealed = seal(KEY, b"secret measurement", NONCE)
        assert b"secret measurement" not in sealed

    def test_tamper_ciphertext_rejected(self):
        sealed = bytearray(seal(KEY, b"payload", NONCE))
        sealed[20] ^= 0x01
        with pytest.raises(CryptoError):
            open_sealed(KEY, bytes(sealed))

    def test_tamper_tag_rejected(self):
        sealed = bytearray(seal(KEY, b"payload", NONCE))
        sealed[-1] ^= 0x01
        with pytest.raises(CryptoError):
            open_sealed(KEY, bytes(sealed))

    def test_truncated_rejected(self):
        with pytest.raises(CryptoError):
            open_sealed(KEY, b"short")

    def test_wrong_key_rejected(self):
        other = SymmetricKey(b"\x33" * 32)
        with pytest.raises(CryptoError):
            open_sealed(other, seal(KEY, b"payload", NONCE))

    def test_nonce_varies_ciphertext(self):
        a = seal(KEY, b"payload", b"\x01" * 16)
        b = seal(KEY, b"payload", b"\x02" * 16)
        assert a != b

    def test_bad_key_size_rejected(self):
        with pytest.raises(CryptoError):
            SymmetricKey(b"short")

    def test_bad_nonce_size_rejected(self):
        with pytest.raises(CryptoError):
            seal(KEY, b"x", b"short")

    @given(st.binary(max_size=300))
    def test_roundtrip_arbitrary(self, plaintext):
        assert open_sealed(KEY, seal(KEY, plaintext, NONCE)) == plaintext


class TestKdf:
    def test_deterministic(self):
        assert hkdf(b"m", b"info", 32) == hkdf(b"m", b"info", 32)

    def test_info_separates_keys(self):
        assert hkdf(b"m", b"enc", 32) != hkdf(b"m", b"mac", 32)

    def test_length_honored(self):
        assert len(hkdf(b"m", b"i", 100)) == 100

    def test_invalid_length_rejected(self):
        with pytest.raises(CryptoError):
            hkdf(b"m", b"i", 0)


class TestNonces:
    def test_fresh_nonces_unique(self):
        gen = NonceGenerator(HmacDrbg(5))
        nonces = {gen.fresh() for _ in range(100)}
        assert len(nonces) == 100

    def test_nonce_size(self):
        assert len(NonceGenerator(HmacDrbg(5)).fresh()) == NONCE_SIZE

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            Nonce(b"short")

    def test_cache_accepts_then_rejects(self):
        cache = NonceCache()
        cache.check_and_store(b"\x01" * 16)
        with pytest.raises(ReplayError):
            cache.check_and_store(b"\x01" * 16)

    def test_cache_eviction_is_fifo(self):
        cache = NonceCache(capacity=2)
        for i in range(3):
            cache.check_and_store(bytes([i]) * 16)
        assert bytes([0]) * 16 not in cache
        assert bytes([2]) * 16 in cache

    def test_cache_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            NonceCache(capacity=0)


class TestCertificates:
    @pytest.fixture(scope="class")
    def ca(self):
        return CertificateAuthority("pCA", HmacDrbg(99), key_bits=512)

    @pytest.fixture(scope="class")
    def server_keys(self):
        return generate_keypair(HmacDrbg(42), bits=512)

    def test_issue_and_check(self, ca, server_keys):
        cert = ca.issue("server-0001", server_keys.public)
        ca.check(cert)
        verify_certificate(ca.public_key, cert)

    def test_tampered_subject_rejected(self, ca, server_keys):
        import dataclasses

        cert = ca.issue("server-0001", server_keys.public)
        forged = dataclasses.replace(cert, subject="server-evil")
        with pytest.raises(SignatureError):
            ca.check(forged)

    def test_wrong_issuer_rejected(self, ca, server_keys):
        other_ca = CertificateAuthority("otherCA", HmacDrbg(7), key_bits=512)
        cert = other_ca.issue("server-0001", server_keys.public)
        with pytest.raises(SignatureError):
            ca.check(cert)

    def test_attestation_key_certification(self, ca, server_keys):
        session_keys = generate_keypair(HmacDrbg(1000), bits=512)
        ca.enroll("server-0001", server_keys.public)
        endorsement = sign(server_keys.private, session_keys.public.to_dict())
        cert = ca.certify_attestation_key("server-0001", session_keys.public, endorsement)
        ca.check(cert)
        # anonymity: the certificate subject must not name the server
        assert "server-0001" not in cert.subject

    def test_unenrolled_server_rejected(self, ca, server_keys):
        session_keys = generate_keypair(HmacDrbg(1001), bits=512)
        endorsement = sign(server_keys.private, session_keys.public.to_dict())
        with pytest.raises(SignatureError):
            ca.certify_attestation_key("server-ghost", session_keys.public, endorsement)

    def test_bad_endorsement_rejected(self, ca, server_keys):
        session_keys = generate_keypair(HmacDrbg(1002), bits=512)
        ca.enroll("server-0002", server_keys.public)
        with pytest.raises(SignatureError):
            ca.certify_attestation_key("server-0002", session_keys.public, b"\x00" * 64)

    def test_serials_increment(self, ca, server_keys):
        a = ca.issue("s", server_keys.public)
        b = ca.issue("s", server_keys.public)
        assert b.serial == a.serial + 1

    def test_is_enrolled(self, ca, server_keys):
        ca.enroll("server-x", server_keys.public)
        assert ca.is_enrolled("server-x")
        assert not ca.is_enrolled("server-y")
