"""The consistent-hash ring underneath VM placement.

The promises pinned here: ring construction is a pure function of
(shards, seed, vnodes) — two same-seed rings agree on every owner and
two different-seed rings use different salts; an empty ring refuses
lookups instead of guessing; a single-shard ring owns everything;
derived rings (``with_shard`` / ``without_shard``) move only keys whose
new/old owner is the added/removed shard (ring adjacency — the property
that makes rebalancing cheap); and the vnode count trades smoothness
for ring size the way the docstring promises.
"""

from __future__ import annotations

import pytest

from repro.common.errors import StateError
from repro.shard.ring import DEFAULT_VNODES, ConsistentHashRing

KEYS = [f"vm-{i:04d}" for i in range(1, 513)]


def test_empty_ring_refuses_lookup():
    ring = ConsistentHashRing([], seed=1)
    assert len(ring) == 0
    with pytest.raises(StateError):
        ring.owner("vm-0001")


def test_single_shard_owns_everything():
    ring = ConsistentHashRing(["only"], seed=9)
    assert all(ring.owner(k) == "only" for k in KEYS)
    assert ring.distribution(KEYS) == {"only": len(KEYS)}


def test_same_seed_rings_agree_different_seeds_diverge():
    a = ConsistentHashRing(["s1", "s2", "s3"], seed=42)
    b = ConsistentHashRing(["s1", "s2", "s3"], seed=42)
    c = ConsistentHashRing(["s1", "s2", "s3"], seed=43)
    assert a.salt == b.salt
    assert [a.owner(k) for k in KEYS] == [b.owner(k) for k in KEYS]
    assert c.salt != a.salt
    # different salt must actually reshuffle ownership somewhere
    assert [a.owner(k) for k in KEYS] != [c.owner(k) for k in KEYS]


def test_duplicate_shard_rejected():
    with pytest.raises(StateError):
        ConsistentHashRing(["s1", "s1"], seed=1)
    ring = ConsistentHashRing(["s1"], seed=1)
    with pytest.raises(StateError):
        ring.with_shard("s1")


def test_distribution_is_reasonably_smooth():
    ring = ConsistentHashRing(["s1", "s2", "s3", "s4"], seed=7)
    distribution = ring.distribution(KEYS)
    mean = len(KEYS) / 4
    # vnodes smooth placement; no shard should be wildly over/under
    for count in distribution.values():
        assert 0.5 * mean < count < 1.6 * mean


def test_low_vnode_ring_can_skew_onto_one_shard():
    # with a single vnode per shard the arcs are arbitrary — feed the
    # ring keys that all land on one shard and the distribution must
    # report the skew honestly (and lookups still resolve)
    ring = ConsistentHashRing(["s1", "s2"], seed=3, vnodes=1)
    target = ring.owner(KEYS[0])
    skewed = [k for k in KEYS if ring.owner(k) == target]
    assert skewed, "some key must land on the first key's shard"
    distribution = ring.distribution(skewed)
    assert distribution[target] == len(skewed)
    # every shard is listed, including the starved one
    assert sorted(distribution) == ["s1", "s2"]
    assert sum(distribution.values()) == len(skewed)


def test_add_shard_moves_only_ring_adjacent_keys():
    ring = ConsistentHashRing(["s1", "s2", "s3"], seed=11)
    grown = ring.with_shard("s4")
    assert grown.salt == ring.salt  # derived rings share the salt
    moved = ring.moved_keys(grown, KEYS)
    assert moved, "a new shard should take over some keys"
    for key, (old, new) in moved.items():
        assert new == "s4"
        assert old != "s4"
    # every unmoved key keeps its old owner
    for key in KEYS:
        if key not in moved:
            assert grown.owner(key) == ring.owner(key)


def test_remove_shard_moves_only_its_own_keys():
    ring = ConsistentHashRing(["s1", "s2", "s3", "s4"], seed=11)
    shrunk = ring.without_shard("s4")
    moved = ring.moved_keys(shrunk, KEYS)
    owned_by_s4 = [k for k in KEYS if ring.owner(k) == "s4"]
    assert sorted(moved) == sorted(owned_by_s4)
    for key, (old, new) in moved.items():
        assert old == "s4" and new != "s4"
    with pytest.raises(StateError):
        ring.without_shard("nope")


def test_add_then_remove_round_trips():
    ring = ConsistentHashRing(["s1", "s2"], seed=5)
    round_tripped = ring.with_shard("s3").without_shard("s3")
    assert [round_tripped.owner(k) for k in KEYS] == [
        ring.owner(k) for k in KEYS
    ]


def test_vnodes_configure_ring_size():
    small = ConsistentHashRing(["s1", "s2"], seed=2, vnodes=4)
    default = ConsistentHashRing(["s1", "s2"], seed=2)
    assert default.vnodes == DEFAULT_VNODES
    assert len(small._points) == 2 * 4
    assert len(default._points) == 2 * DEFAULT_VNODES
    assert "s1" in small and "nope" not in small
