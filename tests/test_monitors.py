"""Tests for the Monitor Module suite."""

import hashlib

import pytest

from repro.common.errors import StateError
from repro.common.identifiers import VmId
from repro.common.rng import DeterministicRng
from repro.crypto.drbg import HmacDrbg
from repro.guest import GuestOS, Rootkit
from repro.monitors import (
    IntegrityMeasurementUnit,
    MeasurementRequest,
    MonitorModule,
    RunIntervalHistogram,
    SoftwareInventory,
    VmiTool,
    VmmProfileTool,
)
from repro.monitors.monitor_module import (
    MEAS_CPU_INTERVAL_HISTOGRAM,
    MEAS_CPU_USAGE,
    MEAS_KERNEL_MODULES,
    MEAS_PLATFORM_INTEGRITY,
    MEAS_TASK_LIST,
    MEAS_VM_IMAGE_INTEGRITY,
    CpuIntervalHistogramProvider,
    CpuUsageProvider,
    KernelModulesProvider,
    PlatformIntegrityProvider,
    TaskListProvider,
    VmImageIntegrityProvider,
)
from repro.tpm import TpmEmulator, TrustModule
from repro.xen import CpuBoundWorkload, Hypervisor, IoBoundWorkload


class TestRunIntervalHistogram:
    def test_solo_cpu_bound_peaks_at_last_bin(self):
        hv = Hypervisor()
        monitor = RunIntervalHistogram()
        hv.add_monitor(monitor)
        hv.create_domain(VmId("vm-a"), CpuBoundWorkload())
        hv.run_for(3000.0)
        histogram = monitor.histogram(VmId("vm-a"))
        assert histogram[-1] == max(histogram)
        assert sum(histogram[:-1]) == 0

    def test_io_bound_peaks_at_short_bins(self):
        hv = Hypervisor()
        monitor = RunIntervalHistogram()
        hv.add_monitor(monitor)
        rng = DeterministicRng(5)
        hv.create_domain(VmId("io"), IoBoundWorkload(rng, burst_ms=2.0, wait_ms=8.0))
        hv.run_for(3000.0)
        histogram = monitor.histogram(VmId("io"))
        # bursts of ~2 ms land in bins 1-2
        assert sum(histogram[0:3]) > 0.9 * sum(histogram)

    def test_distribution_normalizes(self):
        hv = Hypervisor()
        monitor = RunIntervalHistogram()
        hv.add_monitor(monitor)
        hv.create_domain(VmId("vm-a"), CpuBoundWorkload())
        hv.run_for(1000.0)
        assert sum(monitor.distribution(VmId("vm-a"))) == pytest.approx(1.0)

    def test_unknown_vm_is_zero(self):
        monitor = RunIntervalHistogram()
        assert monitor.histogram(VmId("ghost")) == [0] * monitor.num_bins
        assert monitor.distribution(VmId("ghost")) == [0.0] * monitor.num_bins

    def test_trust_registers_mirror_watched_vm(self):
        trust = TrustModule(HmacDrbg(1), key_bits=512)
        hv = Hypervisor()
        monitor = RunIntervalHistogram(watched_vid=VmId("vm-a"), trust_module=trust)
        hv.add_monitor(monitor)
        hv.create_domain(VmId("vm-a"), CpuBoundWorkload())
        hv.create_domain(VmId("vm-b"), CpuBoundWorkload())
        hv.run_for(2000.0)
        registers = trust.read_registers(monitor.num_bins)
        assert registers == [float(c) for c in monitor.histogram(VmId("vm-a"))]

    def test_reset_clears(self):
        hv = Hypervisor()
        monitor = RunIntervalHistogram()
        hv.add_monitor(monitor)
        hv.create_domain(VmId("vm-a"), CpuBoundWorkload())
        hv.run_for(500.0)
        monitor.reset(VmId("vm-a"))
        assert sum(monitor.histogram(VmId("vm-a"))) == 0

    def test_bad_bin_count_rejected(self):
        with pytest.raises(ValueError):
            RunIntervalHistogram(num_bins=1)


class TestVmmProfileTool:
    def test_window_measures_solo_usage(self):
        hv = Hypervisor()
        hv.create_domain(VmId("vm-a"), CpuBoundWorkload())
        tool = VmmProfileTool(hv)
        hv.run_for(100.0)
        tool.start_window(VmId("vm-a"))
        hv.run_for(500.0)
        window = tool.stop_window(VmId("vm-a"))
        assert window.relative_usage == pytest.approx(1.0, abs=0.02)
        assert window.wall_ms == pytest.approx(500.0)

    def test_window_sees_fair_share(self):
        hv = Hypervisor()
        hv.create_domain(VmId("vm-a"), CpuBoundWorkload())
        hv.create_domain(VmId("vm-b"), CpuBoundWorkload())
        tool = VmmProfileTool(hv)
        hv.run_for(300.0)
        tool.start_window(VmId("vm-a"))
        hv.run_for(3000.0)
        assert tool.stop_window(VmId("vm-a")).relative_usage == pytest.approx(0.5, abs=0.07)

    def test_stop_without_start_rejected(self):
        hv = Hypervisor()
        hv.create_domain(VmId("vm-a"), CpuBoundWorkload())
        with pytest.raises(StateError):
            VmmProfileTool(hv).stop_window(VmId("vm-a"))

    def test_unknown_domain_rejected(self):
        hv = Hypervisor()
        with pytest.raises(StateError):
            VmmProfileTool(hv).start_window(VmId("ghost"))


class TestVmiTool:
    def test_detects_hidden_processes(self):
        vmi = VmiTool()
        guest = GuestOS.with_standard_services("ubuntu")
        Rootkit().infect(guest)
        vmi.attach(VmId("vm-a"), guest)
        true_names = {t["name"] for t in vmi.running_tasks(VmId("vm-a"))}
        reported_names = {t["name"] for t in vmi.reported_tasks(VmId("vm-a"))}
        assert "cryptominer" in true_names
        assert "cryptominer" not in reported_names

    def test_detach_removes_guest(self):
        vmi = VmiTool()
        vmi.attach(VmId("vm-a"), GuestOS("g"))
        vmi.detach(VmId("vm-a"))
        with pytest.raises(StateError):
            vmi.running_tasks(VmId("vm-a"))

    def test_kernel_modules_visible(self):
        vmi = VmiTool()
        guest = GuestOS.with_standard_services("ubuntu")
        Rootkit(name="rk").infect(guest)
        vmi.attach(VmId("vm-a"), guest)
        assert "rk.ko" in vmi.kernel_modules(VmId("vm-a"))


class TestIntegrityUnit:
    def test_platform_measurement_matches_expected(self):
        tpm = TpmEmulator(HmacDrbg(2), key_bits=512)
        unit = IntegrityMeasurementUnit(tpm)
        inventory = SoftwareInventory.pristine_platform()
        unit.measure_platform(inventory)
        measured = unit.platform_measurement()
        assert measured["pcr"] == IntegrityMeasurementUnit.expected_platform_value(inventory)

    def test_tampered_platform_diverges(self):
        tpm = TpmEmulator(HmacDrbg(2), key_bits=512)
        unit = IntegrityMeasurementUnit(tpm)
        pristine = SoftwareInventory.pristine_platform()
        tampered = pristine.tampered("dom0-linux-3.10", b"backdoored kernel")
        unit.measure_platform(tampered)
        assert unit.platform_measurement()["pcr"] != (
            IntegrityMeasurementUnit.expected_platform_value(pristine)
        )

    def test_vm_image_measurement(self):
        tpm = TpmEmulator(HmacDrbg(2), key_bits=512)
        unit = IntegrityMeasurementUnit(tpm)
        image = b"ubuntu cloud image"
        unit.measure_vm_image(VmId("vm-a"), image)
        measured = unit.vm_image_measurement(VmId("vm-a"))
        assert measured["pcr"] == IntegrityMeasurementUnit.expected_image_value(image)
        assert measured["log"] == [hashlib.sha256(image).digest()]

    def test_unmeasured_vm_rejected(self):
        tpm = TpmEmulator(HmacDrbg(2), key_bits=512)
        unit = IntegrityMeasurementUnit(tpm)
        with pytest.raises(StateError):
            unit.vm_image_measurement(VmId("ghost"))

    def test_forget_vm(self):
        tpm = TpmEmulator(HmacDrbg(2), key_bits=512)
        unit = IntegrityMeasurementUnit(tpm)
        unit.measure_vm_image(VmId("vm-a"), b"img")
        unit.forget_vm(VmId("vm-a"))
        with pytest.raises(StateError):
            unit.vm_image_measurement(VmId("vm-a"))

    def test_tamper_unknown_component_rejected(self):
        with pytest.raises(StateError):
            SoftwareInventory.pristine_platform().tampered("nope", b"x")


class TestMonitorModule:
    @pytest.fixture()
    def full_module(self):
        """A monitor module with every provider wired, plus its substrate."""
        hv = Hypervisor()
        hv.create_domain(VmId("vm-a"), CpuBoundWorkload())
        trust = TrustModule(HmacDrbg(3), key_bits=512)
        unit = IntegrityMeasurementUnit(trust.tpm)
        unit.measure_platform(SoftwareInventory.pristine_platform())
        unit.measure_vm_image(VmId("vm-a"), b"image")
        vmi = VmiTool()
        guest = GuestOS.with_standard_services("ubuntu")
        vmi.attach(VmId("vm-a"), guest)
        histogram = RunIntervalHistogram()
        hv.add_monitor(histogram)
        profile = VmmProfileTool(hv)
        module = MonitorModule()
        module.register(PlatformIntegrityProvider(unit))
        module.register(VmImageIntegrityProvider(unit))
        module.register(TaskListProvider(vmi))
        module.register(KernelModulesProvider(vmi))
        module.register(CpuIntervalHistogramProvider(histogram))
        module.register(CpuUsageProvider(profile))
        return module, hv

    def test_supports_and_listing(self, full_module):
        module, _ = full_module
        assert module.supports(MEAS_TASK_LIST)
        assert not module.supports("nonexistent")
        assert MEAS_CPU_USAGE in module.supported_measurements()

    def test_instant_measurements_collect(self, full_module):
        module, _ = full_module
        request = MeasurementRequest(
            vid=VmId("vm-a"),
            measurements=(MEAS_PLATFORM_INTEGRITY, MEAS_VM_IMAGE_INTEGRITY,
                          MEAS_TASK_LIST, MEAS_KERNEL_MODULES),
        )
        assert not module.window_required(request.measurements)
        module.begin(request)
        result = module.collect(request)
        assert set(result) == set(request.measurements)
        assert any(t["name"] == "sshd" for t in result[MEAS_TASK_LIST])

    def test_windowed_measurements(self, full_module):
        module, hv = full_module
        request = MeasurementRequest(
            vid=VmId("vm-a"),
            measurements=(MEAS_CPU_USAGE, MEAS_CPU_INTERVAL_HISTOGRAM),
            window_ms=500.0,
        )
        assert module.window_required(request.measurements)
        module.begin(request)
        hv.run_for(500.0)
        result = module.collect(request)
        usage = result[MEAS_CPU_USAGE]
        assert usage["cpu_ms"] / usage["wall_ms"] == pytest.approx(1.0, abs=0.02)
        assert sum(result[MEAS_CPU_INTERVAL_HISTOGRAM]) > 0

    def test_unknown_measurement_rejected(self, full_module):
        module, _ = full_module
        request = MeasurementRequest(vid=VmId("vm-a"), measurements=("bogus",))
        with pytest.raises(StateError):
            module.collect(request)

    def test_unnamed_provider_rejected(self):
        class Nameless(CpuUsageProvider):
            name = ""

        module = MonitorModule()
        hv = Hypervisor()
        with pytest.raises(StateError):
            module.register(Nameless(VmmProfileTool(hv)))
