"""Tests for the symbolic Dolev-Yao protocol verifier."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.verification import (
    KnowledgeBase,
    Name,
    ProtocolVariant,
    ProtocolVerifier,
    aenc,
    h,
    kdf,
    pair,
    pk,
    senc,
    sign_t,
    tuple_t,
)
from repro.verification.terms import subterms

K = Name("k")
M = Name("m")
SK = Name("sk")


class TestTerms:
    def test_terms_are_hashable_and_equal_by_structure(self):
        assert pair(K, M) == pair(K, M)
        assert len({pair(K, M), pair(K, M)}) == 1

    def test_tuple_nests_right(self):
        assert tuple_t(Name("a"), Name("b"), Name("c")) == pair(
            Name("a"), pair(Name("b"), Name("c"))
        )

    def test_tuple_needs_terms(self):
        with pytest.raises(ValueError):
            tuple_t()

    def test_subterms(self):
        term = senc(pair(M, K), K)
        assert subterms(term) == {term, pair(M, K), M, K}


class TestDeduction:
    def test_direct_knowledge(self):
        kb = KnowledgeBase([M])
        assert kb.can_derive(M)
        assert not kb.can_derive(K)

    def test_pair_decomposition(self):
        kb = KnowledgeBase([pair(M, K)])
        assert kb.can_derive(M)
        assert kb.can_derive(K)

    def test_pair_composition(self):
        kb = KnowledgeBase([M, K])
        assert kb.can_derive(pair(M, K))

    def test_senc_needs_key(self):
        kb = KnowledgeBase([senc(M, K)])
        assert not kb.can_derive(M)
        kb.learn(K)
        assert kb.can_derive(M)

    def test_senc_key_inside_other_ciphertext(self):
        """Chained decryption: key protected by another known key."""
        k2 = Name("k2")
        kb = KnowledgeBase([senc(M, K), senc(K, k2), k2])
        assert kb.can_derive(M)

    def test_aenc_needs_private_key(self):
        kb = KnowledgeBase([aenc(M, pk(SK))])
        assert not kb.can_derive(M)
        kb.learn(SK)
        assert kb.can_derive(M)

    def test_aenc_composition_with_public_key(self):
        kb = KnowledgeBase([M, pk(SK)])
        assert kb.can_derive(aenc(M, pk(SK)))
        assert not kb.can_derive(SK)

    def test_signature_reveals_message_not_key(self):
        kb = KnowledgeBase([sign_t(M, SK)])
        assert kb.can_derive(M)
        assert not kb.can_derive(SK)
        # cannot re-sign a different message
        assert not kb.can_derive(sign_t(K, SK))

    def test_hash_one_way(self):
        kb = KnowledgeBase([h(M)])
        assert not kb.can_derive(M)
        kb2 = KnowledgeBase([M])
        assert kb2.can_derive(h(M))

    def test_kdf_one_way(self):
        kb = KnowledgeBase([kdf(M, Name("label"))])
        assert not kb.can_derive(M)

    def test_explain(self):
        kb = KnowledgeBase([pair(M, K)])
        assert kb.explain(M) is not None
        assert kb.explain(Name("unknown")) is None

    def test_nested_protocol_like_derivation(self):
        """Full chain: handshake seed -> channel key -> payload."""
        seed = Name("seed")
        channel_key = kdf(seed, Name("ck"))
        # the derivation label "ck" is a public constant
        trace = [aenc(seed, pk(SK)), senc(M, channel_key), Name("ck")]
        outsider = KnowledgeBase(trace)
        assert not outsider.can_derive(M)
        insider = KnowledgeBase(trace + [SK])
        assert insider.can_derive(seed)
        assert insider.can_derive(M)

    @given(st.integers(min_value=1, max_value=6))
    def test_deep_pair_nesting_derivable(self, depth):
        term = M
        for i in range(depth):
            term = pair(term, Name(f"x{i}"))
        kb = KnowledgeBase([term])
        assert kb.can_derive(M)


class TestStandardProtocol:
    @pytest.fixture(scope="class")
    def verifier(self):
        return ProtocolVerifier(ProtocolVariant.STANDARD)

    def test_all_properties_hold(self, verifier):
        failing = [r for r in verifier.verify_all() if not r.holds]
        assert failing == []

    def test_six_paper_properties_present(self, verifier):
        ids = {r.property_id for r in verifier.verify_all()}
        assert {"①", "②", "③", "④", "⑤", "⑥"} <= ids

    def test_key_secrecy(self, verifier):
        assert all(r.holds for r in verifier.check_key_secrecy())

    def test_payload_secrecy(self, verifier):
        assert all(r.holds for r in verifier.check_payload_secrecy())

    def test_integrity(self, verifier):
        assert all(r.holds for r in verifier.check_integrity())

    def test_authentication(self, verifier):
        assert all(r.holds for r in verifier.check_authentication())

    def test_replay_resistance(self, verifier):
        assert verifier.check_replay().holds

    def test_anonymity(self, verifier):
        assert verifier.check_server_anonymity().holds


class TestWeakenedVariants:
    def test_plaintext_breaks_payload_secrecy(self):
        verifier = ProtocolVerifier(ProtocolVariant.PLAINTEXT)
        payload = verifier.check_payload_secrecy()
        assert any(not r.holds for r in payload)
        # P, M and R are all readable off the wire
        broken = {r.description for r in payload if not r.holds}
        assert any("P" in d for d in broken)
        assert any("R#" in d for d in broken)

    def test_plaintext_still_authenticates(self):
        """Removing encryption must not confuse the signature analysis."""
        verifier = ProtocolVerifier(ProtocolVariant.PLAINTEXT)
        assert all(r.holds for r in verifier.check_authentication())

    def test_no_nonces_enables_replay(self):
        verifier = ProtocolVerifier(ProtocolVariant.NO_NONCES)
        result = verifier.check_replay()
        assert not result.holds
        assert result.witness

    def test_standard_blocks_the_same_replay(self):
        assert ProtocolVerifier(ProtocolVariant.STANDARD).check_replay().holds

    def test_identity_key_reuse_breaks_anonymity(self):
        verifier = ProtocolVerifier(ProtocolVariant.IDENTITY_KEY_REUSE)
        result = verifier.check_server_anonymity()
        assert not result.holds
        assert "identity" in result.witness

    def test_identity_key_reuse_keeps_secrecy(self):
        """Anonymity is the only property the reuse variant loses."""
        verifier = ProtocolVerifier(ProtocolVariant.IDENTITY_KEY_REUSE)
        assert all(r.holds for r in verifier.check_key_secrecy())
        assert all(r.holds for r in verifier.check_payload_secrecy())

    def test_attacks_found_lists_failures(self):
        attacks = ProtocolVerifier(ProtocolVariant.PLAINTEXT).attacks_found()
        assert attacks
        assert all(not a.holds for a in attacks)

    def test_all_hold_summary(self):
        assert ProtocolVerifier(ProtocolVariant.STANDARD).all_hold()
        assert not ProtocolVerifier(ProtocolVariant.PLAINTEXT).all_hold()

    def test_replay_needs_two_sessions(self):
        with pytest.raises(ValueError):
            ProtocolVerifier(ProtocolVariant.STANDARD, sessions=1).check_replay()
