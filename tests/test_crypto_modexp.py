"""Tests for the modexp ladder, the accelerated backend, the keygen
farm, and the eager per-key precompute contract.

Every variant in the ladder must compute exactly ``pow(base, exp, mod)``
— the fast paths are transcript-transparent by construction, and these
tests are the construction's proof obligations.
"""

import pytest

from repro.crypto import accel, fastpath, keygen_farm
from repro.crypto.drbg import HmacDrbg
from repro.crypto.keypool import KeyPool
from repro.crypto.modexp import (
    WINDOW_BITS,
    ExponentWindows,
    MontgomeryContext,
    powmod_montgomery,
    powmod_window,
)
from repro.crypto.keys import RsaPrivateKey
from repro.crypto.rsa import generate_keypair, private_op, public_op
from repro.crypto.signatures import sign, verify

KEY_BITS = 512
SEED = 2718


@pytest.fixture(autouse=True)
def _clean_fastpath():
    fastpath.reset_stats()
    yield
    fastpath.reset_stats()


def _keypair(label="modexp"):
    return generate_keypair(HmacDrbg(SEED, label).fork("k"), KEY_BITS)


# ----------------------------------------------------------------------
# ExponentWindows / MontgomeryContext / window walks
# ----------------------------------------------------------------------


class TestExponentWindows:
    def test_digits_reassemble_exponent(self):
        for exponent in (0, 1, 5, 31, 32, 65537, (1 << 200) + 12345):
            windows = ExponentWindows(exponent)
            value = 0
            for digit in windows.digits:
                value = (value << WINDOW_BITS) | digit
            # only the top digit may be narrower; reassembly must match
            # after accounting for its actual width
            bits = exponent.bit_length()
            top = bits % WINDOW_BITS or (WINDOW_BITS if bits else 0)
            if windows.digits:
                value = windows.digits[0]
                for digit in windows.digits[1:]:
                    value = (value << WINDOW_BITS) | digit
                assert value == exponent
                assert windows.digits[0].bit_length() <= top
            else:
                assert exponent == 0

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            ExponentWindows(-1)


class TestModexpVariants:
    MODULI = [3, 17, (1 << 61) - 1, (1 << 255) + 95]
    CASES = [(0, 5), (1, 0), (2, 1), (7, 65537), (123456789, 987654321)]

    def test_window_matches_pow(self):
        for mod in self.MODULI:
            for base, exp in self.CASES + [(mod - 1, mod - 2)]:
                windows = ExponentWindows(exp)
                assert powmod_window(base, mod, windows) == pow(base, exp, mod)

    def test_montgomery_matches_pow(self):
        for mod in self.MODULI:
            if mod % 2 == 0:
                continue
            ctx = MontgomeryContext(mod)
            for base, exp in self.CASES + [(mod - 1, mod - 2)]:
                windows = ExponentWindows(exp)
                assert ctx.powm(base % mod, windows) == pow(base, exp, mod)
                assert powmod_montgomery(base % mod, ctx, windows) == pow(
                    base, exp, mod
                )

    def test_montgomery_roundtrip(self):
        ctx = MontgomeryContext((1 << 127) - 1)
        for value in (0, 1, 2, (1 << 126) + 17):
            assert ctx.from_mont(ctx.to_mont(value)) == value

    def test_montgomery_requires_odd_modulus(self):
        with pytest.raises(ValueError):
            MontgomeryContext(100)


class TestAccelBackend:
    def test_powmod_matches_pow(self):
        for base, exp, mod in [
            (0, 5, 7), (1, 0, 9), (2, 10, 1),
            (3, 65537, (1 << 64) + 13),
            ((1 << 511) + 7, (1 << 500) + 3, (1 << 512) + 569),
        ]:
            assert accel.powmod(base, exp, mod) == pow(base, exp, mod)

    def test_mr_witness_matches_pure(self):
        for n in ((1 << 127) - 1, (1 << 128) + 1, 3825123056546413051):
            d, r = n - 1, 0
            while d % 2 == 0:
                d, r = d // 2, r + 1
            for a in (2, 3, 5, 7, 11, 0xABCDEF):
                assert accel.mr_witness_passes(a % n, d, n, r) == (
                    accel._py_mr_witness_passes(a % n, d, n, r)
                )

    def test_backend_name_consistent(self):
        assert accel.backend_name() == (
            "gmp-ctypes" if accel.AVAILABLE else "python-pow"
        )


# ----------------------------------------------------------------------
# dispatch ladder: every configuration computes the same integers
# ----------------------------------------------------------------------

DISPATCH_CONFIGS = [
    {},
    {"modexp_fixed_window": True},
    {"modexp_montgomery": True},
    {"accel_backend": True},
    {"accel_backend": True, "modexp_montgomery": True},
]


class TestDispatchEquivalence:
    def test_private_op_all_configs(self):
        keypair = _keypair()
        values = [0, 1, 2, keypair.public.n - 1, (1 << 300) % keypair.public.n]
        with fastpath.overridden():
            reference = [private_op(keypair.private, v) for v in values]
        for overrides in DISPATCH_CONFIGS:
            with fastpath.overridden(**overrides):
                assert [
                    private_op(keypair.private, v) for v in values
                ] == reference, overrides

    def test_private_op_factorless_all_configs(self):
        keypair = _keypair()
        bare = RsaPrivateKey(n=keypair.private.n, d=keypair.private.d)
        values = [0, 1, 2, keypair.public.n - 1]
        with fastpath.overridden():
            reference = [private_op(bare, v) for v in values]
        for overrides in DISPATCH_CONFIGS:
            with fastpath.overridden(**overrides):
                assert [private_op(bare, v) for v in values] == reference

    def test_public_op_all_configs(self):
        keypair = _keypair()
        values = [0, 1, 2, keypair.public.n - 1]
        with fastpath.overridden():
            reference = [public_op(keypair.public, v) for v in values]
        for overrides in DISPATCH_CONFIGS:
            with fastpath.overridden(**overrides):
                assert [public_op(keypair.public, v) for v in values] == (
                    reference
                )

    def test_sign_bytes_identical_across_configs(self):
        keypair = _keypair()
        message = {"vid": "vm-7", "nonce": b"n" * 16}
        with fastpath.overridden():
            reference = sign(keypair.private, message)
        for overrides in DISPATCH_CONFIGS:
            with fastpath.overridden(verify_memo=False, **overrides):
                signature = sign(keypair.private, message)
                assert signature == reference, overrides
                verify(keypair.public, message, signature)  # raises on mismatch

    def test_keygen_identical_with_accel(self):
        with fastpath.overridden():
            pure = generate_keypair(HmacDrbg(SEED, "kg").fork("a"), KEY_BITS)
        with fastpath.overridden(accel_backend=True):
            fast = generate_keypair(HmacDrbg(SEED, "kg").fork("a"), KEY_BITS)
        assert _key_tuple(pure) == _key_tuple(fast)


# ----------------------------------------------------------------------
# eager precompute (satellite: no lazy branch left on the hot path)
# ----------------------------------------------------------------------


class TestEagerPrecompute:
    def test_private_key_constants_present_after_construction(self):
        keypair = _keypair("eager")
        cached = vars(keypair.private)
        # CRT cache plus both modexp-variant caches must already be
        # materialised — the first sign must not pay a lazy branch
        for attr in ("crt", "mont_crt", "windows_crt"):
            assert attr in cached, f"{attr} not precomputed eagerly"
        assert cached["crt"] is not None
        ctx_p, ctx_q = cached["mont_crt"]
        assert ctx_p.n == keypair.private.p
        assert ctx_q.n == keypair.private.q
        win_p, win_q = cached["windows_crt"]
        assert win_p.exponent == cached["crt"][0]
        assert win_q.exponent == cached["crt"][1]

    def test_factorless_key_precomputes_full_size_constants(self):
        private = _keypair("eager2").private
        bare = RsaPrivateKey(n=private.n, d=private.d)
        cached = vars(bare)
        assert cached.get("crt") is None
        assert "mont_n" in cached and "windows_d" in cached
        assert cached["mont_n"].n == bare.n
        assert cached["windows_d"].exponent == bare.d


# ----------------------------------------------------------------------
# keygen farm determinism
# ----------------------------------------------------------------------


def _key_tuple(keypair):
    private = keypair.private
    return (private.n, private.d, private.p, private.q)


def _pool_contents(n, **overrides):
    with fastpath.overridden(key_pool=True, **overrides):
        pool = KeyPool(HmacDrbg(SEED, "farm-pool"), KEY_BITS)
        pool.prefill(n)
        return [_key_tuple(pool.take()) for _ in range(n)]


class TestKeygenFarm:
    def test_farm_unavailable_is_graceful(self):
        drbgs = [HmacDrbg(SEED, "farm").fork(str(i)) for i in range(2)]
        keypairs = keygen_farm.generate_batch(drbgs, KEY_BITS, workers=1)
        assert len(keypairs) == 2

    def test_pool_contents_identical_serial_vs_farm(self):
        serial = _pool_contents(4)
        if not keygen_farm.available():
            pytest.skip("no fork start method on this platform")
        farm = _pool_contents(4, keygen_farm=True)
        assert farm == serial

    def test_pool_contents_identical_across_worker_counts(self):
        if not keygen_farm.available():
            pytest.skip("no fork start method on this platform")
        one = _pool_contents(3, keygen_farm=True, keygen_farm_workers=1)
        two = _pool_contents(3, keygen_farm=True, keygen_farm_workers=2)
        assert one == two

    def test_resolve_workers_clamps(self):
        assert keygen_farm.resolve_workers(8, jobs=3) == 3
        assert keygen_farm.resolve_workers(2, jobs=10) == 2
        assert keygen_farm.resolve_workers(0, jobs=1) == 1
