"""Tests for the tamper-evident audit log."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import CloudMonatt, SecurityProperty
from repro.monitors.audit_log import AuditLog


def sample_log(entries: int = 5) -> AuditLog:
    log = AuditLog()
    for index in range(entries):
        log.append(
            time_ms=float(index * 100),
            event="attestation",
            payload={"vid": f"vm-{index}", "healthy": index % 2 == 0},
        )
    return log


class TestChain:
    def test_empty_log_verifies(self):
        log = AuditLog()
        assert log.verify() == []
        assert log.head_digest == AuditLog.GENESIS

    def test_appended_log_verifies(self):
        assert sample_log().verify() == []

    def test_records_chain_to_predecessors(self):
        log = sample_log(3)
        assert log.record(1).prev_digest == log.record(0).digest
        assert log.record(2).prev_digest == log.record(1).digest

    def test_head_digest_changes_per_append(self):
        log = AuditLog()
        heads = {log.head_digest}
        for index in range(5):
            log.append(0.0, "e", {"i": index})
            assert log.head_digest not in heads
            heads.add(log.head_digest)

    def test_event_filter(self):
        log = AuditLog()
        log.append(0.0, "attestation", {})
        log.append(1.0, "response", {})
        log.append(2.0, "attestation", {})
        assert len(log.events("attestation")) == 2
        assert len(log.events()) == 3


class TestTamperDetection:
    def test_payload_rewrite_detected(self):
        """Flipping 'healthy' on a past record breaks the chain link of
        the successor — the classic audit-washing attack fails."""
        log = sample_log(5)
        log._tamper_replace(2, {"vid": "vm-2", "healthy": False})  # was True
        findings = log.verify()
        assert findings
        assert any(f.index == 3 for f in findings)

    def test_rewrite_of_last_record_detected_by_head(self):
        """Tampering the final record evades internal verification (no
        successor) but changes the head digest an external anchor holds."""
        log = sample_log(3)
        head_before = log.head_digest
        log._tamper_replace(2, {"vid": "vm-2", "healthy": False})  # was True
        assert log.head_digest != head_before

    def test_deletion_detected(self):
        log = sample_log(5)
        log._tamper_delete(1)
        findings = log.verify()
        assert findings
        assert any("sequence" in f.reason or "link" in f.reason for f in findings)

    @given(st.integers(min_value=0, max_value=3))
    def test_any_interior_rewrite_detected(self, index):
        log = sample_log(5)
        log._tamper_replace(index, {"forged": True})
        assert log.verify(), f"rewrite at {index} went undetected"


class TestAttestationServerAudit:
    def test_attestations_are_audited(self):
        cloud = CloudMonatt(num_servers=1, seed=53)
        alice = cloud.register_customer("alice")
        vm = alice.launch_vm(
            "small", "ubuntu",
            properties=[SecurityProperty.RUNTIME_INTEGRITY,
                        SecurityProperty.STARTUP_INTEGRITY],
        )
        alice.attest(vm.vid, SecurityProperty.RUNTIME_INTEGRITY)
        audit = cloud.attestation_server.audit
        assert len(audit) >= 2  # startup attestation + runtime attestation
        assert audit.verify() == []
        records = audit.events("attestation")
        assert any(r.payload["property"] == "runtime_integrity" for r in records)

    def test_audit_records_failures_too(self):
        cloud = CloudMonatt(num_servers=1, num_pcpus=1, seed=54)
        alice = cloud.register_customer("alice")
        victim = alice.launch_vm(
            "small", "ubuntu",
            properties=[SecurityProperty.CPU_AVAILABILITY,
                        SecurityProperty.STARTUP_INTEGRITY],
            workload={"name": "cpu_bound"}, pins=[0],
        )
        alice.launch_vm(
            "medium", "ubuntu",
            workload={"name": "cpu_availability_attack"}, pins=[0, 0],
        )
        alice.attest(victim.vid, SecurityProperty.CPU_AVAILABILITY)
        audit = cloud.attestation_server.audit
        assert any(
            r.payload["healthy"] is False for r in audit.events("attestation")
        )
        assert audit.verify() == []
