"""Failure injection against the full stack.

The architecture's promise is not that attacks cannot happen on the
wire — it is that no attack yields a *forged healthy report*. With the
resilience layer (``src/repro/resilience/``), transient faults are
absorbed: protocol calls retry with fresh nonces, torn channels
re-handshake automatically on the next attempt, and a *persistent*
fault surfaces as a degraded ``UNREACHABLE`` verdict — unhealthy,
fail-closed — rather than an exception or silently wrong data.
Long-running machinery like the periodic attestation loop must survive
fault bursts either way. See docs/FAILURE_MODEL.md.
"""

import pytest

from repro import CloudMonatt, SecurityProperty
from repro.network import DropAttacker, Eavesdropper, TamperAttacker
from repro.network.network import Envelope


@pytest.fixture()
def cloud():
    return CloudMonatt(num_servers=2, seed=91)


@pytest.fixture()
def vm_setup(cloud):
    alice = cloud.register_customer("alice")
    vm = alice.launch_vm(
        "small", "ubuntu",
        properties=[SecurityProperty.RUNTIME_INTEGRITY,
                    SecurityProperty.CPU_AVAILABILITY,
                    SecurityProperty.STARTUP_INTEGRITY],
        workload={"name": "cpu_bound"},
    )
    return alice, vm


class TestWireTampering:
    def test_tampered_attestation_never_yields_healthy_forgery(self, cloud, vm_setup):
        alice, vm = vm_setup
        cloud.network.install_attacker(TamperAttacker(direction="response"))
        # the channel layer rejects every corrupted record; the retries
        # exhaust against the persistent tampering, and the customer
        # receives a degraded UNREACHABLE verdict — never a bogus
        # healthy report, and no exception either
        result = alice.attest(vm.vid, SecurityProperty.RUNTIME_INTEGRITY)
        assert not result.report.healthy
        assert result.report.details.get("verdict") == "UNREACHABLE"

    def test_service_recovers_after_attack_stops(self, cloud, vm_setup):
        alice, vm = vm_setup
        cloud.network.install_attacker(TamperAttacker(direction="response"))
        degraded = alice.attest(vm.vid, SecurityProperty.RUNTIME_INTEGRITY)
        assert not degraded.report.healthy
        cloud.network.install_attacker(None)
        # channels desynchronized by the tampering re-handshake
        # automatically on the next call — the *same* customer recovers
        # once the controller's circuit breaker half-opens
        cloud.run_for(61_000.0)
        recovered = alice.attest(vm.vid, SecurityProperty.RUNTIME_INTEGRITY)
        assert recovered.report.healthy
        assert not recovered.degraded
        # and a fresh customer session works end to end too
        bob = cloud.register_customer("bob")
        fresh = bob.launch_vm(
            "small", "cirros", properties=[SecurityProperty.STARTUP_INTEGRITY]
        )
        assert fresh.accepted


class TestDropAttacks:
    def test_dropped_requests_degrade_to_unreachable(self, cloud, vm_setup):
        alice, vm = vm_setup
        cloud.network.install_attacker(DropAttacker(direction="request"))
        # a blackhole exhausts the customer's retry budget; the result
        # is a locally synthesized degraded report, not an exception
        result = alice.attest(vm.vid, SecurityProperty.RUNTIME_INTEGRITY)
        assert result.degraded
        assert not result.report.healthy
        assert result.report.details.get("verdict") == "UNREACHABLE"

    def test_periodic_loop_survives_transient_drops(self, cloud, vm_setup):
        """Drops during one periodic round must not kill the loop."""
        alice, vm = vm_setup
        alice.start_periodic_attestation(
            vm.vid, SecurityProperty.CPU_AVAILABILITY, frequency_ms=20_000.0
        )
        cloud.run_for(45_000.0)
        healthy_before = len(
            alice.periodic_results(vm.vid, SecurityProperty.CPU_AVAILABILITY)
        )
        assert healthy_before >= 1
        # drop every message for a while: rounds fail internally
        cloud.network.install_attacker(DropAttacker(direction="request"))
        cloud.run_for(45_000.0)
        cloud.network.install_attacker(None)
        cloud.run_for(60_000.0)
        results = alice.periodic_results(vm.vid, SecurityProperty.CPU_AVAILABILITY)
        # the loop kept running and eventually delivered fresh results
        assert len(results) > healthy_before
        assert results[-1].report.healthy or not results[-1].report.healthy  # delivered


class TestEavesdroppingFullStack:
    def test_no_protected_payload_in_the_clear(self, cloud, vm_setup):
        alice, vm = vm_setup
        eavesdropper = Eavesdropper()
        cloud.network.install_attacker(eavesdropper)
        alice.attest(vm.vid, SecurityProperty.RUNTIME_INTEGRITY)
        alice.attest(vm.vid, SecurityProperty.CPU_AVAILABILITY)
        assert eavesdropper.captured
        for marker in (b"sshd", b"healthy", b"relative", b"task_list"):
            assert not eavesdropper.saw_plaintext(marker), marker

    def test_wire_never_carries_server_identity_of_vm(self, cloud, vm_setup):
        """Location privacy: the customer-visible traffic must not name
        the hosting server (paper §3.4.2's co-location concern)."""
        alice, vm = vm_setup
        hosting = str(cloud.controller.database.vm(vm.vid).server)

        class CustomerLinkEavesdropper:
            def __init__(self):
                self.leaked = False

            def process(self, envelope: Envelope):
                if "alice" in (envelope.sender, envelope.receiver):
                    if hosting.encode() in envelope.payload:
                        self.leaked = True
                return envelope.payload

        spy = CustomerLinkEavesdropper()
        cloud.network.install_attacker(spy)
        alice.attest(vm.vid, SecurityProperty.RUNTIME_INTEGRITY)
        assert not spy.leaked


class TestServerFailureMidFlight:
    def test_attesting_vm_on_decommissioned_server(self, cloud, vm_setup):
        alice, vm = vm_setup
        # the hosting server vanishes from the network (crash)
        hosting = cloud.controller.database.vm(vm.vid).server
        cloud.network.unregister(str(hosting))
        result = alice.attest(vm.vid, SecurityProperty.RUNTIME_INTEGRITY)
        # surfaced as an unhealthy report explaining the failure
        assert not result.report.healthy
        assert "failed" in result.report.explanation
