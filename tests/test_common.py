"""Tests for the shared foundations package."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import (
    DeterministicRng,
    IdFactory,
    ServerId,
    VmId,
    derive_seed,
    ms_to_s,
    s_to_ms,
)


class TestIdFactory:
    def test_ids_are_sequential_per_prefix(self):
        factory = IdFactory()
        assert factory.vm_id() == "vm-0001"
        assert factory.vm_id() == "vm-0002"
        assert factory.server_id() == "server-0001"

    def test_independent_factories_restart(self):
        assert IdFactory().vm_id() == IdFactory().vm_id()

    def test_typed_ids_are_strings(self):
        factory = IdFactory()
        vid = factory.vm_id()
        assert isinstance(vid, VmId)
        assert isinstance(vid, str)

    def test_vm_and_server_ids_distinct_types(self):
        assert not isinstance(VmId("x"), ServerId)

    def test_all_id_kinds_mint(self):
        factory = IdFactory()
        assert factory.customer_id().startswith("customer-")
        assert factory.request_id().startswith("request-")
        assert factory.session_id().startswith("session-")


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a") == derive_seed(42, "a")

    def test_label_changes_seed(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_parent_changes_seed(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_seed_is_nonnegative(self):
        assert derive_seed(0, "") >= 0


class TestDeterministicRng:
    def test_same_seed_same_stream(self):
        a, b = DeterministicRng(7), DeterministicRng(7)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_child_streams_independent(self):
        rng = DeterministicRng(7)
        assert rng.child("x").random() != rng.child("y").random()

    def test_jitter_stays_in_band(self):
        rng = DeterministicRng(3)
        for _ in range(100):
            value = rng.jitter(100.0, fraction=0.05)
            assert 95.0 <= value <= 105.0

    def test_uniform_bounds(self):
        rng = DeterministicRng(3)
        for _ in range(100):
            assert 2.0 <= rng.uniform(2.0, 5.0) < 5.0

    def test_choice_and_shuffle(self):
        rng = DeterministicRng(1)
        items = list(range(10))
        assert rng.choice(items) in items
        shuffled = items[:]
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items

    def test_bytes_length(self):
        assert len(DeterministicRng(0).bytes(33)) == 33

    @given(st.integers(min_value=0, max_value=2**31))
    def test_randint_within_bounds(self, seed):
        rng = DeterministicRng(seed)
        assert 0 <= rng.randint(0, 9) <= 9


class TestUnits:
    def test_roundtrip(self):
        assert ms_to_s(s_to_ms(1.5)) == pytest.approx(1.5)

    def test_s_to_ms(self):
        assert s_to_ms(2.0) == 2000.0
