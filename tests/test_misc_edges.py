"""Edge-path battery for the facade and smaller helpers."""

import pytest

from repro import CloudMonatt, SecurityProperty
from repro.common.errors import ConfigurationError, StateError
from repro.lifecycle.flavors import default_flavors
from repro.properties.catalog import PropertyCatalog
from repro.sim.engine import Engine


class TestFacadeEdges:
    def test_empty_cloud_rejected(self):
        with pytest.raises(StateError):
            CloudMonatt(num_servers=0)

    def test_duplicate_customer_rejected(self):
        cloud = CloudMonatt(num_servers=1, seed=5)
        cloud.register_customer("alice")
        with pytest.raises(StateError):
            cloud.register_customer("alice")

    def test_server_of_unplaced_vm_rejected(self):
        cloud = CloudMonatt(num_servers=1, seed=5)
        with pytest.raises(StateError):
            cloud.server_of("vm-ghost")

    def test_now_and_run_for(self):
        cloud = CloudMonatt(num_servers=1, seed=5)
        before = cloud.now
        cloud.run_for(123.0)
        assert cloud.now == pytest.approx(before + 123.0)

    def test_seed_reproducibility_end_to_end(self):
        """Two identical clouds produce identical launch timings."""

        def run() -> dict:
            cloud = CloudMonatt(num_servers=2, seed=2024)
            alice = cloud.register_customer("alice")
            result = alice.launch_vm(
                "medium", "fedora",
                properties=[SecurityProperty.STARTUP_INTEGRITY],
            )
            return result.stage_times_ms

        assert run() == run()

    def test_distinct_seeds_differ(self):
        def total(seed: int) -> float:
            cloud = CloudMonatt(num_servers=2, seed=seed)
            alice = cloud.register_customer("alice")
            return alice.launch_vm(
                "small", "cirros",
                properties=[SecurityProperty.STARTUP_INTEGRITY],
            ).total_ms

        assert total(1) != total(2)

    def test_servers_racked_in_topology(self):
        cloud = CloudMonatt(num_servers=5, seed=5, rack_size=2)
        assert len(cloud.topology.racks()) == 3
        for sid in cloud.servers:
            assert cloud.topology.rack_of(sid)


class TestEngineEdges:
    def test_step_executes_single_event(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, fired.append, "a")
        engine.schedule(2.0, fired.append, "b")
        assert engine.step()
        assert fired == ["a"]
        assert engine.step()
        assert not engine.step()

    def test_reentrant_run_until_keeps_time_monotone(self):
        engine = Engine()
        observed = []

        def outer():
            observed.append(engine.now)
            engine.run_until(engine.now + 50.0)  # inner advance
            observed.append(engine.now)

        engine.schedule(10.0, outer)
        engine.schedule(20.0, lambda: observed.append(engine.now))
        engine.run_until(30.0)
        # times never go backwards even though the inner run overshot
        assert observed == sorted(observed)
        assert engine.now >= 60.0


class TestCatalogEdges:
    def test_properties_listing(self):
        catalog = PropertyCatalog()
        assert len(catalog.properties()) == 4

    def test_unknown_property_spec_rejected(self):
        catalog = PropertyCatalog()

        class Fake:
            pass

        with pytest.raises((ConfigurationError, KeyError, TypeError)):
            catalog.spec(Fake())


class TestFlavorConsistency:
    def test_flavors_monotone_in_every_dimension(self):
        flavors = default_flavors()
        ordering = ["small", "medium", "large"]
        for attribute in ("vcpus", "memory_mb", "disk_gb"):
            values = [getattr(flavors[name], attribute) for name in ordering]
            assert values == sorted(values)
            assert len(set(values)) == 3
