"""Tests for the key-leak trust-dependency analysis."""

import pytest

from repro.verification import ProtocolVariant, ProtocolVerifier
from repro.verification.verifier import trust_dependency_matrix


def broken_ids(failures):
    return {f.property_id for f in failures}


class TestLeakAnalysis:
    @pytest.fixture(scope="class")
    def matrix(self):
        return trust_dependency_matrix()

    def test_no_leak_all_hold(self):
        assert ProtocolVerifier(ProtocolVariant.STANDARD).all_hold()

    def test_customer_key_leak_is_contained(self, matrix):
        """Leaking the customer's key lets the attacker impersonate the
        customer — but the customer's data (P, M, R) stays secret, since
        session seeds are encrypted to the *responders*."""
        failures = matrix["SKcust"]
        assert "④" in broken_ids(failures)
        assert "②" not in broken_ids(failures)
        assert "③" not in broken_ids(failures)

    def test_controller_key_leak_is_catastrophic_for_the_customer(self, matrix):
        """The controller is the customer's trust anchor (threat model
        §3.3 assumes it trusted): its key leaking breaks report
        integrity, payload secrecy on the customer channel, and replay
        resistance."""
        ids = broken_ids(matrix["SKc"])
        assert {"②", "③", "replay"} <= ids
        descriptions = {f.description for f in matrix["SKc"]}
        assert "secrecy of Kx" in descriptions

    def test_controller_leak_does_not_expose_measurements(self, matrix):
        """M travels only on the AS-server channel (Kz): the controller
        key cannot reach it."""
        descriptions = {f.description for f in matrix["SKc"]}
        assert not any("M#" in d for d in descriptions)

    def test_attestation_server_key_leak(self, matrix):
        descriptions = {f.description for f in matrix["SKa"]}
        assert "secrecy of Ky" in descriptions
        assert "secrecy of Kz" not in descriptions

    def test_cloud_server_key_leak_exposes_measurements(self, matrix):
        descriptions = {f.description for f in matrix["SKs"]}
        assert "secrecy of Kz" in descriptions
        assert any("M#" in d for d in descriptions)
        # and enables impersonating an enrolled server toward the pCA
        assert "cloud-server endorsement of attestation keys" in descriptions
        # but NOT forging measurement signatures (those need ASKs)
        assert not any("integrity of measurements" in d for d in descriptions)

    def test_pca_key_leak_breaks_only_certification(self, matrix):
        ids = broken_ids(matrix["SKpca"])
        assert ids == {"⑥"}

    def test_unknown_leak_name_rejected(self):
        with pytest.raises(ValueError):
            ProtocolVerifier(leaked=("SKunknown",))

    def test_multiple_leaks_compose(self):
        verifier = ProtocolVerifier(leaked=("SKc", "SKs"))
        descriptions = {f.description for f in verifier.attacks_found()}
        assert "secrecy of Kx" in descriptions
        assert "secrecy of Kz" in descriptions
