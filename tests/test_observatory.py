"""Tests for the Security Health Observatory: alert engine, fleet
scoreboard, trace store, exporters, and the end-to-end loop closure
into ``nova response``."""

import io
import json

import pytest

from repro.cloud.cloudmonatt import CloudMonatt
from repro.controller.response import ResponseAction
from repro.guest import Rootkit
from repro.lifecycle.states import VmState
from repro.properties.catalog import SecurityProperty
from repro.telemetry import (
    DEFAULT_SLO_TARGETS,
    SPAN_Q1,
    SPAN_Q2,
    MetricsRegistry,
    TraceFormatError,
    alerts_from_records,
    events_from_records,
    export_jsonl_lines,
    read_jsonl,
    render_scoreboard,
    scoreboard_from_records,
    slo_report_from_records,
    to_prometheus_text,
)
from repro.telemetry.observatory import (
    AlertEngine,
    FailureStreakRule,
    HealthScoreboard,
    LatencySloRule,
    Observatory,
    TraceStore,
    UnreachableRule,
    VerificationSpikeRule,
    default_rules,
)
from repro.telemetry.observatory.core import ObservatoryEvent


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _attestation_event(time_ms, healthy, vid="vm-1", prop="runtime_integrity"):
    return ObservatoryEvent(
        kind="attestation",
        time_ms=time_ms,
        fields={"vid": vid, "property": prop, "server": "server-1",
                "healthy": healthy, "explanation": "x"},
    )


def _span(name, start_ms, end_ms, span_id=1, parent_id=None, **attrs):
    return {
        "name": name,
        "span_id": span_id,
        "parent_id": parent_id,
        "start_ms": start_ms,
        "end_ms": end_ms,
        "attrs": attrs,
    }


class TestFailureStreakRule:
    def _engine(self, threshold=3):
        clock = FakeClock()
        rule = FailureStreakRule(threshold=threshold)
        return clock, rule, AlertEngine(clock, rules=[rule])

    def test_fires_at_threshold(self):
        clock, rule, engine = self._engine(threshold=3)
        for t in (1.0, 2.0):
            engine.ingest_event(_attestation_event(t, healthy=False))
        assert engine.alerts == []
        engine.ingest_event(_attestation_event(3.0, healthy=False))
        assert len(engine.alerts) == 1
        alert = engine.alerts[0]
        assert alert.rule == "attestation_failure_streak"
        assert alert.scope == "vm-1/runtime_integrity"
        assert alert.details["streak"] == 3

    def test_streak_resets_on_success(self):
        clock, rule, engine = self._engine(threshold=3)
        engine.ingest_event(_attestation_event(1.0, healthy=False))
        engine.ingest_event(_attestation_event(2.0, healthy=False))
        engine.ingest_event(_attestation_event(3.0, healthy=True))
        assert rule.streak("vm-1", "runtime_integrity") == 0
        engine.ingest_event(_attestation_event(4.0, healthy=False))
        engine.ingest_event(_attestation_event(5.0, healthy=False))
        assert engine.alerts == []

    def test_success_rearms_the_scope_for_a_second_alert(self):
        clock, rule, engine = self._engine(threshold=2)
        for t in (1.0, 2.0):
            engine.ingest_event(_attestation_event(t, healthy=False))
        engine.ingest_event(_attestation_event(3.0, healthy=True))
        for t in (4.0, 5.0):
            engine.ingest_event(_attestation_event(t, healthy=False))
        assert len(engine.alerts) == 2

    def test_streaks_are_per_vm_and_property(self):
        clock, rule, engine = self._engine(threshold=2)
        engine.ingest_event(_attestation_event(1.0, False, vid="vm-1"))
        engine.ingest_event(_attestation_event(2.0, False, vid="vm-2"))
        assert engine.alerts == []

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            FailureStreakRule(threshold=0)


class TestDuplicateSuppression:
    def test_continuing_streak_emits_one_alert(self):
        clock = FakeClock()
        engine = AlertEngine(clock, rules=[FailureStreakRule(threshold=2)])
        for t in (1.0, 2.0, 3.0, 4.0, 5.0):
            engine.ingest_event(_attestation_event(t, healthy=False))
        assert len(engine.alerts) == 1

    def test_fire_returns_none_when_suppressed(self):
        clock = FakeClock()
        rule = UnreachableRule()
        engine = AlertEngine(clock, rules=[rule])
        first = engine.fire(rule, scope="s", message="m")
        second = engine.fire(rule, scope="s", message="m")
        assert first is not None
        assert second is None
        assert len(engine.alerts) == 1

    def test_distinct_scopes_are_not_suppressed(self):
        clock = FakeClock()
        rule = UnreachableRule()
        engine = AlertEngine(clock, rules=[rule])
        engine.fire(rule, scope="a", message="m")
        engine.fire(rule, scope="b", message="m")
        assert len(engine.alerts) == 2


class TestLatencySloRule:
    def test_zero_observations_report_none_compliance(self):
        rule = LatencySloRule()
        report = rule.report()
        assert set(report) == set(DEFAULT_SLO_TARGETS)
        for leg, stats in report.items():
            assert stats["observed"] == 0
            assert stats["breached"] == 0
            assert stats["compliance"] is None

    def test_zero_observations_never_alert(self):
        clock = FakeClock()
        engine = AlertEngine(clock, rules=[LatencySloRule()])
        assert engine.alerts == []

    def test_breach_fires_with_leg_and_vid_scope(self):
        clock = FakeClock()
        rule = LatencySloRule(targets={SPAN_Q2: 100.0})
        engine = AlertEngine(clock, rules=[rule])
        engine.ingest_span(_span(SPAN_Q2, 0.0, 50.0, vid="vm-1"))
        assert engine.alerts == []
        engine.ingest_span(_span(SPAN_Q2, 100.0, 350.0, vid="vm-1"))
        assert len(engine.alerts) == 1
        assert engine.alerts[0].scope == f"{SPAN_Q2}/vm-1"
        report = rule.report()[SPAN_Q2]
        assert report["observed"] == 2
        assert report["breached"] == 1
        assert report["compliance"] == 0.5

    def test_exactly_on_target_is_compliant(self):
        clock = FakeClock()
        rule = LatencySloRule(targets={SPAN_Q2: 100.0})
        engine = AlertEngine(clock, rules=[rule])
        engine.ingest_span(_span(SPAN_Q2, 0.0, 100.0))
        assert engine.alerts == []

    def test_open_spans_are_ignored(self):
        clock = FakeClock()
        rule = LatencySloRule(targets={SPAN_Q2: 1.0})
        engine = AlertEngine(clock, rules=[rule])
        engine.ingest_span(_span(SPAN_Q2, 0.0, None))
        assert rule.report()[SPAN_Q2]["observed"] == 0


class TestVerificationSpikeRule:
    def _failure(self, time_ms):
        return ObservatoryEvent(
            kind="verification_failure", time_ms=time_ms,
            fields={"kind": "nonce", "detail": "stale"},
        )

    def test_fires_only_inside_the_window(self):
        clock = FakeClock()
        engine = AlertEngine(
            clock, rules=[VerificationSpikeRule(threshold=3, window_ms=100.0)]
        )
        engine.ingest_event(self._failure(0.0))
        engine.ingest_event(self._failure(200.0))
        engine.ingest_event(self._failure(400.0))
        assert engine.alerts == []
        engine.ingest_event(self._failure(410.0))
        engine.ingest_event(self._failure(420.0))
        assert len(engine.alerts) == 1
        assert engine.alerts[0].details["count"] == 3

    def test_window_restarts_after_firing(self):
        clock = FakeClock()
        engine = AlertEngine(
            clock, rules=[VerificationSpikeRule(threshold=2, window_ms=100.0)]
        )
        engine.ingest_event(self._failure(0.0))
        engine.ingest_event(self._failure(1.0))
        engine.ingest_event(self._failure(2.0))
        assert len(engine.alerts) == 1
        engine.ingest_event(self._failure(3.0))
        assert len(engine.alerts) == 2


class TestDeterministicOrdering:
    def _run(self, seed):
        cloud = CloudMonatt(
            num_servers=1, seed=seed, telemetry_enabled=True,
            slo_targets={SPAN_Q1: 1.0, SPAN_Q2: 1.0},
        )
        alice = cloud.register_customer("alice")
        vm = alice.launch_vm(
            "small", "ubuntu",
            properties=[SecurityProperty.STARTUP_INTEGRITY,
                        SecurityProperty.RUNTIME_INTEGRITY],
        )
        alice.attest(vm.vid, SecurityProperty.RUNTIME_INTEGRITY)
        return "\n".join(export_jsonl_lines(cloud.telemetry, seed=seed))

    def test_same_seed_runs_export_byte_identical_alert_logs(self):
        assert self._run(11) == self._run(11)

    def test_alert_seq_is_monotonic(self):
        records = [json.loads(line) for line in self._run(11).splitlines()]
        alerts = alerts_from_records(records)
        assert alerts  # the 1 ms SLO targets guarantee breaches
        assert [a["seq"] for a in alerts] == list(range(len(alerts)))


class TestHealthScoreboard:
    def test_failure_dents_the_score(self):
        board = HealthScoreboard()
        board.record_attestation(1.0, "vm-1", "s-1", "p", healthy=True)
        assert board.vm_score("vm-1") == 1.0
        board.record_attestation(2.0, "vm-1", "s-1", "p", healthy=False)
        assert board.vm_score("vm-1") == pytest.approx(0.7)
        assert board.server_score("s-1") == pytest.approx(0.7)

    def test_unknown_entities_score_one(self):
        board = HealthScoreboard()
        assert board.vm_score("nope") == 1.0
        assert board.server_score("nope") == 1.0

    def test_trend_degrading_then_improving(self):
        board = HealthScoreboard()
        for t in range(4):
            board.record_attestation(float(t), "vm-1", "", "p", healthy=True)
        for t in range(4, 8):
            board.record_attestation(float(t), "vm-1", "", "p", healthy=False)
        snapshot = board.snapshot()
        assert snapshot["vms"]["vm-1"]["trend"] == "degrading"
        for t in range(8, 16):
            board.record_attestation(float(t), "vm-1", "", "p", healthy=True)
        assert board.snapshot()["vms"]["vm-1"]["trend"] == "steady"

    def test_trend_needs_history(self):
        board = HealthScoreboard()
        board.record_attestation(1.0, "vm-1", "", "p", healthy=True)
        assert board.snapshot()["vms"]["vm-1"]["trend"] == "no-data"

    def test_unreachable_counts_against_the_server(self):
        board = HealthScoreboard()
        board.record_unreachable(1.0, "as-1")
        entry = board.snapshot()["servers"]["as-1"]
        assert entry["unreachable"] == 1
        assert entry["score"] < 1.0

    def test_report_only_responses_are_not_counted(self):
        board = HealthScoreboard()
        board.record_response(1.0, "vm-1", action="none")
        board.record_response(2.0, "vm-1", action="terminate")
        assert board.snapshot()["vms"]["vm-1"]["responses"] == 1

    def test_snapshot_keys_are_sorted(self):
        board = HealthScoreboard()
        for vid in ("vm-2", "vm-1", "vm-3"):
            board.record_attestation(1.0, vid, "", "p", healthy=True)
        assert list(board.snapshot()["vms"]) == ["vm-1", "vm-2", "vm-3"]

    def test_render_scoreboard_lists_entities(self):
        board = HealthScoreboard()
        board.record_attestation(1.0, "vm-1", "s-1", "p", healthy=False)
        text = render_scoreboard(board.snapshot())
        assert "vm-1" in text
        assert "s-1" in text

    def test_render_empty_scoreboard(self):
        assert "no health data" in render_scoreboard({})


class TestTraceStore:
    def _store(self):
        store = TraceStore()
        store.add_record(_span(SPAN_Q1, 0.0, 100.0, span_id=1, vid="vm-1"))
        store.add_record(
            _span(SPAN_Q2, 10.0, 60.0, span_id=2, parent_id=1, vid="vm-1")
        )
        store.add_record(_span(SPAN_Q1, 200.0, 240.0, span_id=3, vid="vm-2"))
        return store

    def test_filters_compose(self):
        store = self._store()
        assert len(store.spans(name=SPAN_Q1)) == 2
        assert len(store.spans(name=SPAN_Q1, vid="vm-2")) == 1
        assert len(store.spans(min_duration_ms=50.0)) == 2
        assert len(store.spans(name_prefix="protocol.q1")) == 2

    def test_percentiles_nearest_rank(self):
        store = TraceStore()
        for index, duration in enumerate((10.0, 20.0, 30.0, 40.0)):
            store.add_record(_span(SPAN_Q2, 0.0, duration, span_id=index))
        stats = store.percentiles(SPAN_Q2)
        assert stats["p50"] == 30.0
        assert stats["max"] == 40.0
        assert stats["count"] == 4

    def test_percentiles_empty_leg(self):
        assert TraceStore().percentiles(SPAN_Q2) == {}

    def test_rounds_in_start_order(self):
        rounds = self._store().rounds()
        assert [r["span_id"] for r in rounds] == [1, 3]

    def test_waterfall_renders_the_tree(self):
        store = self._store()
        text = store.waterfall(store.rounds()[0])
        assert SPAN_Q1 in text
        assert SPAN_Q2 in text
        assert "#" in text
        # the child is indented under its parent
        assert "  " + SPAN_Q2 in text

    def test_from_records_keeps_only_spans(self):
        records = [
            {"type": "meta", "seed": 1},
            {"type": "span", **_span(SPAN_Q1, 0.0, 1.0)},
            {"type": "alert", "rule": "x"},
        ]
        assert len(TraceStore.from_records(records)) == 1

    def test_render_leg_table(self):
        text = self._store().render_leg_table()
        assert "p50" in text
        assert SPAN_Q1 in text


class TestObservatoryLoopClosure:
    def _infected_cloud(self, seed=11):
        cloud = CloudMonatt(
            num_servers=1, seed=seed, telemetry_enabled=True,
            alert_streak_threshold=2,
        )
        # remediation driven by the alert engine alone
        cloud.controller.auto_respond = False
        cloud.controller.response.set_policy(
            SecurityProperty.RUNTIME_INTEGRITY, ResponseAction.TERMINATE
        )
        cloud.observatory.alerts.auto_respond = True
        alice = cloud.register_customer("alice")
        vm = alice.launch_vm(
            "small", "ubuntu",
            properties=[SecurityProperty.STARTUP_INTEGRITY,
                        SecurityProperty.RUNTIME_INTEGRITY],
        )
        Rootkit().infect(cloud.server_of(vm.vid).hosted[vm.vid].guest)
        return cloud, alice, vm

    def test_streak_alert_triggers_the_configured_response(self):
        cloud, alice, vm = self._infected_cloud()
        alice.attest(vm.vid, SecurityProperty.RUNTIME_INTEGRITY)
        assert cloud.observatory.alert_records() == []
        alice.attest(vm.vid, SecurityProperty.RUNTIME_INTEGRITY)
        alerts = cloud.observatory.alert_records()
        assert len(alerts) == 1
        assert alerts[0]["rule"] == "attestation_failure_streak"
        assert alerts[0]["details"]["response_action"] == "terminate"
        record = cloud.controller.database.vm(vm.vid)
        assert record.state is VmState.TERMINATED

    def test_responder_stays_dormant_by_default(self):
        cloud, alice, vm = self._infected_cloud()
        cloud.observatory.alerts.auto_respond = False
        alice.attest(vm.vid, SecurityProperty.RUNTIME_INTEGRITY)
        alice.attest(vm.vid, SecurityProperty.RUNTIME_INTEGRITY)
        alerts = cloud.observatory.alert_records()
        assert len(alerts) == 1
        assert "response_action" not in alerts[0]["details"]
        record = cloud.controller.database.vm(vm.vid)
        assert record.state is not VmState.TERMINATED

    def test_scoreboard_reflects_the_failures(self):
        cloud, alice, vm = self._infected_cloud()
        alice.attest(vm.vid, SecurityProperty.RUNTIME_INTEGRITY)
        alice.attest(vm.vid, SecurityProperty.RUNTIME_INTEGRITY)
        snapshot = cloud.observatory.health_snapshot()
        entry = snapshot["vms"][str(vm.vid)]
        assert entry["failures"] == 2
        assert entry["score"] < 1.0


class TestJsonlRoundTrip:
    def _traced_cloud(self, seed=11):
        cloud = CloudMonatt(num_servers=1, seed=seed, telemetry_enabled=True)
        alice = cloud.register_customer("alice")
        vm = alice.launch_vm(
            "small", "ubuntu",
            properties=[SecurityProperty.STARTUP_INTEGRITY,
                        SecurityProperty.RUNTIME_INTEGRITY],
        )
        alice.attest(vm.vid, SecurityProperty.RUNTIME_INTEGRITY)
        return cloud

    def test_all_record_types_round_trip(self):
        cloud = self._traced_cloud()
        text = "\n".join(export_jsonl_lines(cloud.telemetry, seed=11))
        records = read_jsonl(io.StringIO(text))
        types = {record["type"] for record in records}
        assert {"meta", "span", "metrics", "event", "scoreboard",
                "slo"} <= types
        assert events_from_records(records)
        assert scoreboard_from_records(records) == (
            cloud.observatory.health_snapshot()
        )
        assert slo_report_from_records(records) == cloud.observatory.slo_report()
        store = TraceStore.from_records(records)
        assert len(store) == len(cloud.telemetry.tracer.finished)

    def test_malformed_line_names_its_position(self):
        with pytest.raises(TraceFormatError, match="<stream>:2"):
            read_jsonl(io.StringIO('{"type":"meta"}\nnot json\n'))

    def test_non_object_line_rejected(self):
        with pytest.raises(TraceFormatError, match="JSON object"):
            read_jsonl(io.StringIO("[1,2,3]\n"))

    def test_scoreboard_absent_returns_none(self):
        assert scoreboard_from_records([{"type": "meta"}]) is None
        assert slo_report_from_records([{"type": "meta"}]) is None


class TestPrometheusExporter:
    def test_counter_gets_total_suffix_and_labels(self):
        registry = MetricsRegistry()
        registry.counter("as.attestations").inc(2, property="rooted")
        text = to_prometheus_text(registry)
        assert "# TYPE as_attestations_total counter" in text
        assert 'as_attestations_total{property="rooted"} 2' in text

    def test_gauge_renders_plainly(self):
        registry = MetricsRegistry()
        registry.gauge("sim.pending").set(3.5)
        text = to_prometheus_text(registry)
        assert "# TYPE sim_pending gauge" in text
        assert "sim_pending 3.5" in text

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(10.0, 20.0))
        for value in (5.0, 15.0, 15.0, 99.0):
            histogram.observe(value)
        text = to_prometheus_text(registry)
        assert 'lat_bucket{le="10"} 1' in text
        assert 'lat_bucket{le="20"} 3' in text
        assert 'lat_bucket{le="+Inf"} 4' in text
        assert "lat_sum 134" in text
        assert "lat_count 4" in text

    def test_histogram_inf_bucket_counts_overflow_only_once(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(10.0,))
        histogram.observe(5.0)
        histogram.observe(50.0)
        text = to_prometheus_text(registry)
        assert 'lat_bucket{le="10"} 1' in text
        assert 'lat_bucket{le="+Inf"} 2' in text
        assert "lat_sum 55" in text
        assert "lat_count 2" in text

    def test_histogram_fractional_sum_renders_as_float(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(10.0,)).observe(0.5)
        assert "lat_sum 0.5" in to_prometheus_text(registry)

    def test_labeled_histogram_series_render_sorted_and_separate(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(10.0, 20.0))
        histogram.observe(5.0, leg="q2")
        histogram.observe(15.0, leg="q2")
        histogram.observe(30.0, leg="q1")
        text = to_prometheus_text(registry)
        lines = text.splitlines()
        # one bucket ladder + _sum + _count per label set, q1 before q2
        # (the registry's sorted-label ordering)
        q1 = [line for line in lines if 'leg="q1"' in line]
        q2 = [line for line in lines if 'leg="q2"' in line]
        assert lines.index(q1[0]) < lines.index(q2[0])
        assert q1 == [
            'lat_bucket{leg="q1",le="10"} 0',
            'lat_bucket{leg="q1",le="20"} 0',
            'lat_bucket{leg="q1",le="+Inf"} 1',
            'lat_sum{leg="q1"} 30',
            'lat_count{leg="q1"} 1',
        ]
        assert q2 == [
            'lat_bucket{leg="q2",le="10"} 1',
            'lat_bucket{leg="q2",le="20"} 2',
            'lat_bucket{leg="q2",le="+Inf"} 2',
            'lat_sum{leg="q2"} 20',
            'lat_count{leg="q2"} 2',
        ]

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(detail='say "hi"\nback\\slash')
        text = to_prometheus_text(registry)
        assert r'c_total{detail="say \"hi\"\nback\\slash"} 1' in text

    def test_metric_names_are_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("1weird-name.leg").inc()
        assert "_1weird_name_leg_total 1" in to_prometheus_text(registry)

    def test_empty_registry_renders_empty(self):
        assert to_prometheus_text(MetricsRegistry()) == ""


class TestObservatoryWiring:
    def test_disabled_telemetry_has_no_observatory(self):
        cloud = CloudMonatt(num_servers=1, telemetry_enabled=False)
        assert cloud.observatory is None
        assert cloud.telemetry.observatory is None

    def test_observatory_opt_out(self):
        cloud = CloudMonatt(
            num_servers=1, telemetry_enabled=True, observatory_enabled=False
        )
        assert cloud.observatory is None

    def test_observe_event_is_a_noop_without_observatory(self):
        cloud = CloudMonatt(num_servers=1, telemetry_enabled=False)
        cloud.telemetry.observe_event("attestation", vid="vm-1")

    def test_default_rules_cover_the_standard_concerns(self):
        names = {rule.name for rule in default_rules()}
        assert names == {
            "attestation_failure_streak", "latency_slo_breach",
            "verification_failure_spike", "endpoint_unreachable",
            "retry_storm", "circuit_breaker_open", "shard_worker_crash",
            "keypool_exhausted", "policy_coverage_blown",
            "policy_alarm_critical",
        }

    def test_observatory_slo_targets_flow_to_the_rule(self):
        observatory = Observatory(FakeClock(), slo_targets={SPAN_Q2: 42.0})
        assert observatory.slo_report()[SPAN_Q2]["target_ms"] == 42.0
