"""Tests for the Resource-Freeing Attack and the scheduler defenses."""

import pytest

from repro.attacks import (
    AvailabilityAttackWorkload,
    RfaPressureCampaign,
    RfaTargetWorkload,
)
from repro.common.identifiers import VmId
from repro.common.rng import DeterministicRng
from repro.monitors import VmmProfileTool
from repro.monitors.monitor_module import MEAS_CPU_USAGE
from repro.properties import AvailabilityInterpreter
from repro.xen import CpuBoundWorkload, FiniteCpuBoundWorkload, Hypervisor


class TestRfaMechanics:
    def test_duty_cycle_collapses_under_pressure(self):
        target = RfaTargetWorkload(DeterministicRng(1))
        assert target.nominal_duty_cycle == pytest.approx(0.5)
        target.apply_pressure(1.0)
        assert target.nominal_duty_cycle < 0.1

    def test_pressure_bounds(self):
        target = RfaTargetWorkload(DeterministicRng(1))
        with pytest.raises(ValueError):
            target.apply_pressure(1.5)
        with pytest.raises(ValueError):
            target.apply_pressure(-0.1)

    def test_construction_validation(self):
        with pytest.raises(ValueError):
            RfaTargetWorkload(DeterministicRng(1), cpu_ms=0.0)
        with pytest.raises(ValueError):
            RfaTargetWorkload(DeterministicRng(1), max_io_stretch=0.5)

    def test_campaign_schedules_pressure(self):
        hv = Hypervisor()
        target = RfaTargetWorkload(DeterministicRng(1))
        hv.create_domain(VmId("victim"), target)
        campaign = RfaPressureCampaign(hv.engine, target)
        campaign.pulse(start_ms=100.0, duration_ms=200.0, level=0.8)
        hv.run_for(150.0)
        assert target.pressure == 0.8
        hv.run_for(200.0)
        assert target.pressure == 0.0
        assert len(campaign.schedule) == 2


class TestRfaEffect:
    def _run(self, pressure_level):
        hv = Hypervisor(num_pcpus=1)
        target = RfaTargetWorkload(DeterministicRng(2))
        victim = hv.create_domain(VmId("victim"), target)
        beneficiary = hv.create_domain(VmId("beneficiary"), CpuBoundWorkload())
        if pressure_level:
            RfaPressureCampaign(hv.engine, target).ramp(500.0, pressure_level)
        tool = VmmProfileTool(hv)
        hv.run_for(1000.0)  # past the ramp
        tool.start_window(VmId("victim"))
        tool.start_window(VmId("beneficiary"))
        hv.run_for(4000.0)
        return (
            tool.stop_window(VmId("victim")).relative_usage,
            tool.stop_window(VmId("beneficiary")).relative_usage,
        )

    def test_without_attack_fair_contention(self):
        victim_usage, beneficiary_usage = self._run(0.0)
        # victim demands ~50%; on a contended core it gets close to that
        assert victim_usage > 0.35
        assert beneficiary_usage < 0.65

    def test_rfa_frees_the_cpu_for_the_beneficiary(self):
        victim_usage, beneficiary_usage = self._run(1.0)
        assert victim_usage < 0.12          # the victim drowned in I/O
        assert beneficiary_usage > 0.85     # the beneficiary absorbed it

    def test_availability_monitoring_flags_the_rfa(self):
        """CloudMonatt's availability property sees the usage collapse."""
        victim_usage, _ = self._run(1.0)
        interpreter = AvailabilityInterpreter(default_entitled_share=0.5)
        report = interpreter.interpret(
            VmId("victim"),
            {MEAS_CPU_USAGE: {"cpu_ms": victim_usage * 1000.0, "wall_ms": 1000.0}},
        )
        assert not report.healthy


class TestSchedulerDefenses:
    VICTIM_MS = 800.0

    def _slowdown(self, precise=False, boost=True):
        hv = Hypervisor(num_pcpus=1, precise_accounting=precise,
                        boost_enabled=boost)
        hv.create_domain(VmId("victim"), FiniteCpuBoundWorkload(self.VICTIM_MS))
        hv.create_domain(
            VmId("attacker"), AvailabilityAttackWorkload(),
            num_vcpus=2, pcpus=[0, 0],
        )
        finish = hv.run_until_domain_finishes(VmId("victim"), max_ms=60_000.0)
        return finish / self.VICTIM_MS

    def test_baseline_scheduler_is_vulnerable(self):
        assert self._slowdown() > 10.0

    def test_precise_accounting_defeats_the_attack(self):
        """With per-interval charging, tick evasion buys nothing: the
        attacker pays for its CPU, goes OVER, and loses the boost."""
        assert self._slowdown(precise=True) < 3.0

    def test_disabling_boost_alone_does_not_defeat_the_attack(self):
        """The root cause is the *sampled accounting*, not the boost:
        a tick-evading attacker never pays credits, stays UNDER while
        the victim sinks to OVER, and preempts on wake even without
        BOOST priority. (This matches the literature: the real fix the
        scheduler adopted was exact accounting, not removing boost.)"""
        assert self._slowdown(boost=False) > 5.0

    def test_both_defenses_together_defeat_the_attack(self):
        assert self._slowdown(precise=True, boost=False) < 3.0

    def test_precise_accounting_keeps_fairness(self):
        hv = Hypervisor(num_pcpus=1, precise_accounting=True)
        a = hv.create_domain(VmId("a"), CpuBoundWorkload())
        b = hv.create_domain(VmId("b"), CpuBoundWorkload())
        hv.run_for(6000.0)
        assert a.relative_cpu_usage(hv.now) == pytest.approx(0.5, abs=0.06)
        assert b.relative_cpu_usage(hv.now) == pytest.approx(0.5, abs=0.06)

    def test_no_boost_hurts_io_latency(self):
        """The trade-off that justifies boost's existence: without it,
        I/O-bound work waits behind full CPU-bound timeslices."""
        from repro.xen import IoBoundWorkload

        def io_share(boost: bool) -> float:
            hv = Hypervisor(num_pcpus=1, boost_enabled=boost)
            io = hv.create_domain(
                VmId("io"),
                IoBoundWorkload(DeterministicRng(5), burst_ms=1.0, wait_ms=4.0),
            )
            hv.create_domain(VmId("hog"), CpuBoundWorkload())
            hv.run_for(5000.0)
            return io.relative_cpu_usage(hv.now)

        assert io_share(boost=True) > io_share(boost=False)
