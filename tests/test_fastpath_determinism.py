"""The crypto fast paths must never change a protocol byte.

The key pool, verification memo, subkey cache and wire-encoding cache
all promise to be *transparent*: same seed, same transcripts, whether
they are on or off. These tests pin that promise down by running the
same scenario under both configurations and comparing everything
observable — raw wire traffic (captured below the encryption layer, so
every quote Q1/Q2/Q3, signature and certificate is covered), the
customer-visible attestation response, and the attestation server's
hash-chained audit log.
"""

from __future__ import annotations

import itertools

import pytest

from repro import CloudMonatt, SecurityProperty
from repro.crypto import fastpath
from repro.crypto.drbg import HmacDrbg
from repro.crypto.encoding import encode
from repro.crypto.keypool import KeyPool
from repro.crypto.rsa import generate_keypair
from repro.crypto.signatures import clear_verify_memo, sign, verify
from repro.common.errors import SignatureError
from repro.network.attacker import Eavesdropper
from repro.telemetry import Telemetry
from repro.tpm.trust_module import TrustModule

KEY_BITS = 512
SEED = 314


def _run_attestation_round(fast_paths_on: bool, extra_overrides=None):
    """Launch → attest → report under one fast-path configuration.

    Returns every observable artifact of the round: the raw wire
    transcript, the customer's verified response, and the audit log.
    ``extra_overrides`` layers additional fast-path knobs (the modexp /
    keygen matrix) on top of the enabled configuration.
    """
    if fast_paths_on:
        # exercise batching and an explicit prefill, not just pass-through
        context = fastpath.overridden(
            key_pool_batch=4, **(extra_overrides or {})
        )
    else:
        context = fastpath.all_disabled()
    with context:
        clear_verify_memo()
        cloud = CloudMonatt(num_servers=1, seed=SEED, key_bits=KEY_BITS)
        tap = Eavesdropper()
        cloud.network.install_attacker(tap)
        if fast_paths_on:
            server = next(iter(cloud.servers.values()))
            assert server.trust_module.key_pool is not None
            server.trust_module.key_pool.prefill(4)
        customer = cloud.register_customer("alice")
        vm = customer.launch_vm(
            "small", "ubuntu",
            properties=[SecurityProperty.RUNTIME_INTEGRITY],
        )
        attestation = customer.attest(vm.vid, SecurityProperty.RUNTIME_INTEGRITY)
        wire = [
            (env.sender, env.receiver, env.direction, env.payload)
            for env in tap.captured
        ]
        audit = [
            (rec.index, rec.time_ms, rec.event, rec.digest, rec.prev_digest)
            for rec in cloud.attestation_server.audit
        ]
        return {
            "wire": wire,
            "response": encode(attestation.response),
            "report_healthy": attestation.report.healthy,
            "audit": audit,
            "audit_head": cloud.attestation_server.audit.head_digest,
        }


class TestTranscriptEquivalence:
    def test_fast_paths_change_no_protocol_bytes(self):
        baseline = _run_attestation_round(fast_paths_on=False)
        optimized = _run_attestation_round(fast_paths_on=True)
        # every wire crossing, byte for byte: covers the Q1/Q2/Q3
        # quotes, all signatures and certificates of the round
        assert optimized["wire"] == baseline["wire"]
        assert optimized["response"] == baseline["response"]
        assert optimized["report_healthy"] == baseline["report_healthy"]
        assert optimized["audit"] == baseline["audit"]
        assert optimized["audit_head"] == baseline["audit_head"]

    def test_disabled_round_is_self_consistent(self):
        # same configuration twice → identical transcripts (sanity check
        # that the comparison above cannot pass vacuously)
        first = _run_attestation_round(fast_paths_on=False)
        second = _run_attestation_round(fast_paths_on=False)
        assert first["wire"] == second["wire"]
        assert len(first["wire"]) > 10


def _run_fleet_round(fast_paths_on: bool):
    """Three overlapped rounds through the fleet pipeline's batch path."""
    context = (
        fastpath.overridden(key_pool_batch=4)
        if fast_paths_on
        else fastpath.all_disabled()
    )
    with context:
        clear_verify_memo()
        cloud = CloudMonatt(num_servers=1, seed=SEED, key_bits=KEY_BITS)
        tap = Eavesdropper()
        cloud.network.install_attacker(tap)
        customer = cloud.register_customer("alice")
        vids = [
            customer.launch_vm(
                "small", "ubuntu",
                properties=[SecurityProperty.RUNTIME_INTEGRITY],
            ).vid
            for _ in range(3)
        ]
        results = customer.attest_fleet(
            [(vid, SecurityProperty.RUNTIME_INTEGRITY) for vid in vids]
        )
        wire = [
            (env.sender, env.receiver, env.direction, env.payload)
            for env in tap.captured
        ]
        return {
            "wire": wire,
            "reports": [encode(r.report.to_dict()) for r in results],
            "audit_head": cloud.attestation_server.audit.head_digest,
        }


class TestFleetTranscriptEquivalence:
    def test_fast_paths_change_no_fleet_protocol_bytes(self):
        # the batched path (Merkle multi-quotes, shared sessions,
        # coalesced measurement) under fast paths vs fully disabled:
        # every wire crossing identical, byte for byte
        baseline = _run_fleet_round(fast_paths_on=False)
        optimized = _run_fleet_round(fast_paths_on=True)
        assert optimized["wire"] == baseline["wire"]
        assert optimized["reports"] == baseline["reports"]
        assert optimized["audit_head"] == baseline["audit_head"]


#: the crypto-floor knobs: every on/off combination must be
#: transcript-transparent (ISSUE 8 satellite: the 2^4 matrix)
MATRIX_KNOBS = (
    "modexp_montgomery",
    "modexp_fixed_window",
    "keygen_farm",
    "accel_backend",
)

_MATRIX_COMBOS = list(itertools.product((False, True), repeat=len(MATRIX_KNOBS)))


def _combo_id(combo) -> str:
    short = {"modexp_montgomery": "mont", "modexp_fixed_window": "win",
             "keygen_farm": "farm", "accel_backend": "accel"}
    on = [short[k] for k, v in zip(MATRIX_KNOBS, combo) if v]
    return "+".join(on) or "none"


class TestModexpMatrixEquivalence:
    """Montgomery × fixed-window × keygen-farm × accel backend.

    Each variant claims to compute the same integers as the ``pow``
    baseline; here every one of the 16 combinations drives a complete
    attestation round and must reproduce the disabled-path transcript
    byte for byte, and fill a key pool with byte-identical keys.
    """

    _baseline = None
    _pool_baseline = None

    @classmethod
    def _get_baseline(cls):
        if cls._baseline is None:
            cls._baseline = _run_attestation_round(fast_paths_on=False)
        return cls._baseline

    @classmethod
    def _get_pool_baseline(cls):
        if cls._pool_baseline is None:
            disabled = {knob: False for knob in MATRIX_KNOBS}
            with fastpath.overridden(key_pool=True, **disabled):
                cls._pool_baseline = cls._pool_keys()
        return cls._pool_baseline

    @staticmethod
    def _pool_keys():
        pool = KeyPool(HmacDrbg(SEED, "matrix-pool"), KEY_BITS)
        pool.prefill(4)
        return [
            (kp.private.n, kp.private.d, kp.private.p, kp.private.q)
            for kp in (pool.take() for _ in range(4))
        ]

    @pytest.mark.parametrize("combo", _MATRIX_COMBOS, ids=_combo_id)
    def test_transcripts_and_pool_identical(self, combo):
        overrides = dict(zip(MATRIX_KNOBS, combo))
        baseline = self._get_baseline()
        result = _run_attestation_round(
            fast_paths_on=True, extra_overrides=overrides
        )
        assert result["wire"] == baseline["wire"], overrides
        assert result["response"] == baseline["response"], overrides
        assert result["audit"] == baseline["audit"], overrides
        assert result["audit_head"] == baseline["audit_head"], overrides
        pool_baseline = self._get_pool_baseline()
        with fastpath.overridden(key_pool=True, **overrides):
            assert self._pool_keys() == pool_baseline, overrides


class TestKeyPoolDeterminism:
    def _lazy_sessions(self, count: int) -> list[tuple[int, int]]:
        with fastpath.overridden(key_pool=False):
            module = TrustModule(HmacDrbg(SEED, "tm"), key_bits=KEY_BITS)
            return [
                (s.public.n, s.public.e)
                for s in (module.new_attestation_session() for _ in range(count))
            ]

    def test_pool_matches_lazy_generation(self):
        lazy = self._lazy_sessions(3)
        with fastpath.overridden(key_pool=True):
            module = TrustModule(HmacDrbg(SEED, "tm"), key_bits=KEY_BITS)
            module.key_pool.prefill(3)
            pooled = [
                (s.public.n, s.public.e)
                for s in (module.new_attestation_session() for _ in range(3))
            ]
        assert pooled == lazy

    def test_on_demand_batch_matches_lazy_generation(self):
        lazy = self._lazy_sessions(3)
        with fastpath.overridden(key_pool=True, key_pool_batch=2):
            module = TrustModule(HmacDrbg(SEED, "tm"), key_bits=KEY_BITS)
            batched = [
                (s.public.n, s.public.e)
                for s in (module.new_attestation_session() for _ in range(3))
            ]
        assert batched == lazy

    def test_background_generation_matches_sync(self):
        sync_pool = KeyPool(HmacDrbg(SEED, "pool"), KEY_BITS)
        sync_pool.prefill(3)
        sync_keys = [sync_pool.take().public.n for _ in range(3)]
        with fastpath.overridden(key_pool_background=True):
            bg_pool = KeyPool(HmacDrbg(SEED, "pool"), KEY_BITS)
            bg_pool.prefill(3)
            bg_keys = [bg_pool.take().public.n for _ in range(3)]
        assert bg_keys == sync_keys

    def test_pool_counters(self):
        telemetry = Telemetry(enabled=True)
        pool = KeyPool(HmacDrbg(SEED, "pool"), KEY_BITS, telemetry=telemetry)
        pool.prefill(2)
        pool.take()
        pool.take()
        pool.take()  # empty → miss
        assert telemetry.metrics.counter("crypto.keypool.prefill").total() == 2
        assert telemetry.metrics.counter("crypto.keypool.hit").total() == 2
        assert telemetry.metrics.counter("crypto.keypool.miss").total() == 1
        assert pool.taken == 3


class TestVerifyMemo:
    def setup_method(self):
        clear_verify_memo()
        fastpath.reset_stats()

    def test_memo_hit_on_repeat_verification(self):
        keypair = generate_keypair(HmacDrbg(1, "memo"), bits=KEY_BITS)
        message = {"quote": b"q3", "vid": "vm-1"}
        signature = sign(keypair.private, message)
        with fastpath.overridden(verify_memo=True):
            verify(keypair.public, message, signature)
            verify(keypair.public, message, signature)
        stats = fastpath.stats()
        assert stats.get("verify_memo.miss") == 1
        assert stats.get("verify_memo.hit") == 1

    def test_failures_are_never_cached(self):
        keypair = generate_keypair(HmacDrbg(1, "memo"), bits=KEY_BITS)
        message = {"quote": b"q3"}
        signature = bytearray(sign(keypair.private, message))
        signature[5] ^= 0x40
        with fastpath.overridden(verify_memo=True):
            for _ in range(2):
                with pytest.raises(SignatureError):
                    verify(keypair.public, message, bytes(signature))
        assert "verify_memo.hit" not in fastpath.stats()

    def test_memo_is_bounded(self):
        from repro.crypto import signatures

        keypair = generate_keypair(HmacDrbg(1, "memo"), bits=KEY_BITS)
        with fastpath.overridden(verify_memo=True, verify_memo_size=4):
            for index in range(8):
                message = {"i": index}
                verify(keypair.public, message, sign(keypair.private, message))
            assert len(signatures._VERIFY_MEMO) <= 4

    def test_tampered_message_rejected_after_memo_warm(self):
        # a warm memo entry for (key, digest, sig) must not leak
        # acceptance to a different message or signature
        keypair = generate_keypair(HmacDrbg(1, "memo"), bits=KEY_BITS)
        message = {"quote": b"q3"}
        signature = sign(keypair.private, message)
        with fastpath.overridden(verify_memo=True):
            verify(keypair.public, message, signature)
            with pytest.raises(SignatureError):
                verify(keypair.public, {"quote": b"q3-tampered"}, signature)


class TestPrimitiveCaches:
    def test_crt_constants_match_direct_exponentiation(self):
        from repro.crypto.keys import RsaPrivateKey
        from repro.crypto.rsa import private_op

        keypair = generate_keypair(HmacDrbg(2, "crt"), bits=KEY_BITS)
        value = 0x1234567890ABCDEF
        crt_result = private_op(keypair.private, value)
        no_factors = RsaPrivateKey(n=keypair.private.n, d=keypair.private.d)
        assert no_factors.crt is None
        assert private_op(no_factors, value) == crt_result

    def test_symmetric_subkeys_identical_cached_and_uncached(self):
        from repro.crypto.symmetric import SymmetricKey

        with fastpath.overridden(cache_symmetric_subkeys=False):
            uncached = SymmetricKey(b"s" * 32)
            reference = (uncached.enc_key, uncached.mac_key)
        cached = SymmetricKey(b"s" * 32)
        assert (cached.enc_key, cached.mac_key) == reference
        assert (cached.enc_key, cached.mac_key) == reference  # second read

    def test_encode_fast_path_matches_reference_shapes(self):
        from repro.crypto.encoding import decode

        samples = [
            {"t": "data", "seq": 3, "sealed": b"\x00\x01", "from": "alice"},
            {"nested": {"a": [1, 2.5, "x", None, True, False]}, "n": 10 ** 40},
            ["mixed", b"bytes", {"k": -1}, (1, 2)],
        ]
        for value in samples:
            blob = encode(value)
            round_tripped = decode(blob)
            assert encode(round_tripped) == blob


def test_fastpath_configure_rejects_unknown_option():
    from repro.common.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        fastpath.configure(no_such_flag=True)


def test_all_disabled_restores_previous_config():
    before = fastpath.config().key_pool
    with fastpath.all_disabled():
        assert fastpath.config().key_pool is False
        assert fastpath.config().verify_memo is False
    assert fastpath.config().key_pool is before


class TestShardParallelKnob:
    """The ``shard_parallel`` knobs ride the same configuration plane.

    ISSUE 10: parallel shard execution is a fast path like any other —
    off by default, coverable by ``all_disabled``, and transcript-
    transparent when engaged (the full matrix lives in
    ``tests/test_shard_parallel.py``; here the knob-driven plane's
    fleet bytes are pinned against the serial default).
    """

    def test_knobs_default_off_and_all_disabled_covers_them(self):
        assert fastpath.config().shard_parallel is False
        assert fastpath.config().shard_parallel_workers == 0
        with fastpath.overridden(shard_parallel=True,
                                 shard_parallel_workers=3):
            config = fastpath.config()
            assert config.shard_parallel is True
            assert config.shard_parallel_workers == 3
            with fastpath.all_disabled():
                assert fastpath.config().shard_parallel is False
            assert fastpath.config().shard_parallel is True
        assert fastpath.config().shard_parallel is False

    def test_knob_driven_plane_matches_serial_bytes(self):
        from repro.common import procpool
        from repro.shard import ShardPlane

        if not procpool.fork_available():
            pytest.skip("requires the fork start method")

        def fleet(plane):
            with plane:
                customer = plane.register_customer("alice")
                launches = [
                    customer.launch_vm(
                        "small", "cirros",
                        properties=[SecurityProperty.RUNTIME_INTEGRITY],
                    )
                    for _ in range(4)
                ]
                result = customer.attest_fleet([
                    (l.vid, SecurityProperty.RUNTIME_INTEGRITY)
                    for l in launches
                ])
                return (
                    [encode(r.report.to_dict()) for r in result.results],
                    result.root,
                )

        serial = fleet(ShardPlane(num_shards=2, seed=SEED,
                                  num_servers=1, key_bits=KEY_BITS))
        with fastpath.overridden(shard_parallel=True,
                                 shard_parallel_workers=2):
            knob_driven = ShardPlane(num_shards=2, seed=SEED,
                                     num_servers=1, key_bits=KEY_BITS)
            assert knob_driven.executor.mode == "parallel"
            parallel = fleet(knob_driven)
        assert parallel == serial
