"""Tests for the telemetry subsystem: metrics, tracer, exporters, and
the end-to-end instrumentation of the attestation protocol."""

import io
import json

import pytest

from repro.cloud.cloudmonatt import CloudMonatt
from repro.common.errors import ConfigurationError
from repro.properties.catalog import SecurityProperty
from repro.telemetry import (
    KEY_TRACE,
    NULL_TELEMETRY,
    PROTOCOL_LEG_SPANS,
    SPAN_APPRAISAL,
    SPAN_ATTEST_ROUND,
    SPAN_INTERPRETATION,
    SPAN_Q1,
    SPAN_Q2,
    SPAN_Q3,
    Histogram,
    MetricsRegistry,
    Telemetry,
    Tracer,
    console_summary,
    export_jsonl_lines,
    metrics_from_records,
    read_jsonl,
    spans_from_records,
    write_jsonl,
)


class FakeClock:
    """A manually advanced clock standing in for the engine."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCounter:
    def test_labeled_series_accumulate_independently(self):
        registry = MetricsRegistry()
        counter = registry.counter("protocol.quotes")
        counter.inc(kind="q1")
        counter.inc(kind="q2")
        counter.inc(2.0, kind="q2")
        assert counter.value(kind="q1") == 1.0
        assert counter.value(kind="q2") == 3.0
        assert counter.total() == 4.0

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc(a="1", b="2")
        assert counter.value(b="2", a="1") == 1.0

    def test_decrement_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().counter("c").inc(-1.0)

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigurationError):
            registry.gauge("x")


class TestHistogram:
    def test_bucket_edges_are_inclusive_upper_bounds(self):
        histogram = Histogram("h", buckets=(10.0, 20.0, 50.0))
        # exactly on an edge lands in that edge's bucket
        histogram.observe(10.0)
        histogram.observe(10.1)
        histogram.observe(20.0)
        histogram.observe(50.0)
        histogram.observe(50.1)  # overflow -> +inf bucket
        assert histogram.bucket_counts() == [1, 2, 1, 1]
        assert histogram.count() == 5
        assert histogram.sum() == pytest.approx(140.2)

    def test_exact_quantiles(self):
        histogram = Histogram("h", buckets=(100.0,))
        for value in (5.0, 1.0, 3.0, 2.0, 4.0):
            histogram.observe(value)
        assert histogram.quantile(0.0) == 1.0
        assert histogram.quantile(0.5) == 3.0
        assert histogram.quantile(1.0) == 5.0

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=(10.0, 5.0))

    def test_quantile_without_observations_raises(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=(1.0,)).quantile(0.5)


class TestTracer:
    def test_spans_nest_through_the_stack(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        with tracer.span("outer") as outer:
            clock.now = 10.0
            with tracer.span("inner"):
                clock.now = 15.0
        assert [s.name for s in tracer.finished] == ["inner", "outer"]
        inner, outer_finished = tracer.finished
        assert inner.parent_id == outer.span_id
        assert outer_finished.parent_id is None
        assert inner.duration_ms == 5.0
        assert outer_finished.duration_ms == 15.0

    def test_completion_order_is_inner_first(self):
        tracer = Tracer(FakeClock())
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        assert [s.name for s in tracer.finished] == ["c", "b", "a"]

    def test_remote_parent_overrides_stack(self):
        tracer = Tracer(FakeClock())
        with tracer.span("sender"):
            context = tracer.context()
        with tracer.span("receiver", remote_parent=context) as received:
            pass
        sender = tracer.spans_named("sender")[0]
        assert received.parent_id == sender.span_id

    def test_context_is_none_outside_any_span(self):
        tracer = Tracer(FakeClock())
        assert tracer.context() is None

    def test_exception_closes_span_and_tags_error(self):
        tracer = Tracer(FakeClock())
        with pytest.raises(ValueError):
            with tracer.span("failing"):
                raise ValueError("boom")
        span = tracer.spans_named("failing")[0]
        assert span.end_ms is not None
        assert span.attrs["error"] == "ValueError"

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(FakeClock(), enabled=False)
        with tracer.span("x"):
            pass
        assert tracer.finished == []
        assert tracer.context() is None


class TestNullTelemetry:
    def test_null_hub_discards_everything(self):
        NULL_TELEMETRY.counter("c").inc()
        NULL_TELEMETRY.gauge("g").set(1.0)
        NULL_TELEMETRY.histogram("h").observe(1.0)
        with NULL_TELEMETRY.span("s"):
            pass
        assert NULL_TELEMETRY.snapshot() == {}
        assert NULL_TELEMETRY.tracer.finished == []


class TestJsonlRoundTrip:
    def _traced_hub(self):
        clock = FakeClock()
        telemetry = Telemetry(clock=clock, seed=9)
        with telemetry.span("outer", vid="vm-1"):
            clock.now = 12.0
            telemetry.counter("events").inc(kind="test")
            telemetry.histogram("latency", buckets=(10.0, 100.0)).observe(12.0)
        return telemetry

    def test_round_trip_preserves_spans_and_metrics(self):
        telemetry = self._traced_hub()
        stream = io.StringIO()
        lines = write_jsonl(telemetry, stream, seed=9)
        records = read_jsonl(io.StringIO(stream.getvalue()))
        assert lines == len(records)
        assert records[0]["type"] == "meta"
        assert records[0]["seed"] == 9
        spans = spans_from_records(records)
        assert [s["name"] for s in spans] == ["outer"]
        assert spans[0]["attrs"] == {"vid": "vm-1"}
        assert spans[0]["end_ms"] == 12.0
        metrics = metrics_from_records(records)
        assert metrics["events"]["series"]["kind=test"] == 1.0
        assert metrics["latency"]["series"][""]["count"] == 1

    def test_jsonl_lines_are_canonical_json(self):
        telemetry = self._traced_hub()
        for line in export_jsonl_lines(telemetry):
            parsed = json.loads(line)
            assert line == json.dumps(
                parsed, sort_keys=True, separators=(",", ":")
            )

    def test_console_summary_renders_rows(self):
        telemetry = self._traced_hub()
        rendered = console_summary(telemetry, title="t")
        assert "outer" in rendered
        assert rendered.startswith("=== t ===")


def _attested_cloud(seed: int) -> CloudMonatt:
    cloud = CloudMonatt(num_servers=2, seed=seed, telemetry_enabled=True)
    customer = cloud.register_customer("alice")
    vm = customer.launch_vm(
        "small", "ubuntu", properties=[SecurityProperty.STARTUP_INTEGRITY]
    )
    customer.attest(vm.vid, SecurityProperty.RUNTIME_INTEGRITY)
    return cloud


class TestEndToEnd:
    def test_quickstart_trace_contains_every_protocol_leg(self):
        cloud = _attested_cloud(seed=11)
        names = {span.name for span in cloud.telemetry.tracer.finished}
        for leg in PROTOCOL_LEG_SPANS:
            assert leg in names, f"missing protocol leg span {leg}"

    def test_span_tree_follows_the_protocol_nesting(self):
        cloud = _attested_cloud(seed=11)
        tracer = cloud.telemetry.tracer
        by_id = {span.span_id: span for span in tracer.finished}

        def parent_name(span):
            return by_id[span.parent_id].name if span.parent_id else None

        # Q3 runs inside the appraisal, which runs inside the attest round
        for q3 in tracer.spans_named(SPAN_Q3):
            assert parent_name(q3) == SPAN_APPRAISAL
        for phase in (SPAN_APPRAISAL, SPAN_INTERPRETATION):
            for span in tracer.spans_named(phase):
                assert parent_name(span) == SPAN_ATTEST_ROUND
        # the attest round is the AS-side continuation of leg Q2
        for attest_round in tracer.spans_named(SPAN_ATTEST_ROUND):
            assert parent_name(attest_round) == SPAN_Q2
        # the runtime attestation's Q2 descends from the customer's Q1
        q1 = tracer.spans_named(SPAN_Q1)[0]
        descendants = set()
        frontier = [q1.span_id]
        while frontier:
            parent = frontier.pop()
            for span in tracer.finished:
                if span.parent_id == parent:
                    descendants.add(span.name)
                    frontier.append(span.span_id)
        assert SPAN_Q2 in descendants

    def test_same_seed_runs_export_identical_snapshots(self):
        first = _attested_cloud(seed=13)
        second = _attested_cloud(seed=13)
        assert first.telemetry.snapshot_json() == second.telemetry.snapshot_json()
        first_lines = list(export_jsonl_lines(first.telemetry, seed=13))
        second_lines = list(export_jsonl_lines(second.telemetry, seed=13))
        assert first_lines == second_lines

    def test_different_seeds_differ(self):
        first = _attested_cloud(seed=13)
        second = _attested_cloud(seed=14)
        assert first.telemetry.snapshot_json() != second.telemetry.snapshot_json()

    def test_quote_counters_cover_all_three_legs(self):
        cloud = _attested_cloud(seed=11)
        quotes = cloud.telemetry.metrics.counter("protocol.quotes")
        assert quotes.value(kind="q1") > 0
        assert quotes.value(kind="q2") > 0
        assert quotes.value(kind="q3") > 0

    def test_trace_key_never_enters_signed_payloads(self):
        # the reserved context key rides outside every signature: an
        # attested run with telemetry on passes all signature, nonce and
        # quote checks (they raise on any mismatch), so embedding
        # KEY_TRACE into the protocol messages cannot have reached the
        # signed payloads
        assert KEY_TRACE == "_trace"
        cloud = _attested_cloud(seed=11)
        audit = list(cloud.attestation_server.audit)
        assert any(entry.payload.get("healthy") for entry in audit)

    def test_disabled_cloud_records_nothing(self):
        cloud = CloudMonatt(num_servers=1, seed=11)
        customer = cloud.register_customer("alice")
        customer.launch_vm(
            "small", "ubuntu", properties=[SecurityProperty.STARTUP_INTEGRITY]
        )
        assert cloud.telemetry.enabled is False
        assert cloud.telemetry.tracer.finished == []
        assert cloud.telemetry.snapshot() == {}

    def test_telemetry_does_not_change_simulated_results(self):
        plain = CloudMonatt(num_servers=2, seed=17)
        traced = CloudMonatt(num_servers=2, seed=17, telemetry_enabled=True)
        results = []
        for cloud in (plain, traced):
            customer = cloud.register_customer("alice")
            vm = customer.launch_vm(
                "small", "ubuntu",
                properties=[SecurityProperty.STARTUP_INTEGRITY],
            )
            results.append((vm.accepted, vm.stage_times_ms, cloud.now))
        assert results[0] == results[1]
