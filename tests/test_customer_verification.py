"""Tests for the customer's own verification logic — the end-verifier
role (§3.2.1). Forged or replayed pushes must never enter the
customer's result store, even when sent over an authenticated channel."""

import pytest

from repro import CloudMonatt, SecurityProperty
from repro.common.errors import ProtocolError, ReplayError, SignatureError
from repro.protocol import messages as msg
from repro.protocol.quotes import (
    attestation_quote,
    report_quote_q1,
    report_quote_q2,
)


class TestQuotes:
    def test_quotes_are_deterministic(self):
        assert attestation_quote("vm", ["m"], {"m": 1}, b"n") == attestation_quote(
            "vm", ["m"], {"m": 1}, b"n"
        )

    def test_q3_binds_every_field(self):
        base = attestation_quote("vm", ["m"], {"m": 1}, b"n")
        assert attestation_quote("vm2", ["m"], {"m": 1}, b"n") != base
        assert attestation_quote("vm", ["m2"], {"m": 1}, b"n") != base
        assert attestation_quote("vm", ["m"], {"m": 2}, b"n") != base
        assert attestation_quote("vm", ["m"], {"m": 1}, b"x") != base

    def test_q2_includes_server_but_q1_does_not(self):
        """Q1 deliberately omits the server identity: the customer must
        not learn where the VM runs (§3.4.2)."""
        q2a = report_quote_q2("vm", "server-1", "p", {"r": 1}, b"n")
        q2b = report_quote_q2("vm", "server-2", "p", {"r": 1}, b"n")
        assert q2a != q2b
        q1 = report_quote_q1("vm", "p", {"r": 1}, b"n")
        assert q1 not in (q2a, q2b)

    def test_cross_quote_domains_disjoint(self):
        """The same logical fields can never make Q1 collide with Q3."""
        assert report_quote_q1("vm", "p", {"x": 1}, b"n") != attestation_quote(
            "vm", ["p"], {"x": 1}, b"n"
        )


@pytest.fixture()
def subscribed():
    cloud = CloudMonatt(num_servers=1, seed=62)
    alice = cloud.register_customer("alice")
    vm = alice.launch_vm(
        "small", "ubuntu",
        properties=[SecurityProperty.CPU_AVAILABILITY,
                    SecurityProperty.STARTUP_INTEGRITY],
        workload={"name": "cpu_bound"},
    )
    alice.start_periodic_attestation(
        vm.vid, SecurityProperty.CPU_AVAILABILITY, frequency_ms=30_000.0
    )
    cloud.run_for(40_000.0)  # one genuine push delivered
    results = alice.periodic_results(vm.vid, SecurityProperty.CPU_AVAILABILITY)
    assert len(results) == 1
    return cloud, alice, vm


def forged_push(cloud, vm, seq, report_healthy=True, sign_with_controller=True,
                nonce=None):
    """Build a periodic push, optionally correctly signed."""
    sub_nonce = nonce if nonce is not None else _subscription_nonce(cloud, vm)
    report = {
        "prop": "cpu_availability",
        "healthy": report_healthy,
        "explanation": "forged",
        "details": {},
    }
    signed = {
        msg.KEY_VID: str(vm.vid),
        msg.KEY_PROPERTY: "cpu_availability",
        msg.KEY_REPORT: report,
        "seq": seq,
        msg.KEY_NONCE: sub_nonce,
    }
    signature = (
        cloud.controller.endpoint.sign(signed)
        if sign_with_controller
        else b"\x00" * 64
    )
    return {
        msg.KEY_TYPE: msg.MSG_PERIODIC_RESULT,
        **signed,
        msg.KEY_SIGNATURE: signature,
        "response": None,
    }


def _subscription_nonce(cloud, vm):
    subscription = cloud.controller._subscriptions[
        (vm.vid, "cpu_availability")
    ]
    return subscription.nonce


class TestPushVerification:
    def test_unsigned_push_rejected(self, subscribed):
        cloud, alice, vm = subscribed
        push = forged_push(cloud, vm, seq=2, sign_with_controller=False)
        with pytest.raises(SignatureError):
            cloud.controller.endpoint.call("alice", push)
        assert len(
            alice.periodic_results(vm.vid, SecurityProperty.CPU_AVAILABILITY)
        ) == 1

    def test_replayed_seq_rejected(self, subscribed):
        cloud, alice, vm = subscribed
        push = forged_push(cloud, vm, seq=1)  # seq 1 already consumed
        with pytest.raises(ReplayError):
            cloud.controller.endpoint.call("alice", push)

    def test_wrong_subscription_nonce_rejected(self, subscribed):
        cloud, alice, vm = subscribed
        push = forged_push(cloud, vm, seq=2, nonce=b"\x99" * 16)
        with pytest.raises(ReplayError):
            cloud.controller.endpoint.call("alice", push)

    def test_push_for_unknown_subscription_rejected(self, subscribed):
        cloud, alice, vm = subscribed
        push = forged_push(cloud, vm, seq=2)
        push[msg.KEY_PROPERTY] = "runtime_integrity"  # no such subscription
        with pytest.raises((ProtocolError, SignatureError)):
            cloud.controller.endpoint.call("alice", push)

    def test_properly_signed_fresh_push_accepted(self, subscribed):
        """Sanity: the verification gauntlet passes honest pushes."""
        cloud, alice, vm = subscribed
        push = forged_push(cloud, vm, seq=2, report_healthy=False)
        cloud.controller.endpoint.call("alice", push)
        results = alice.periodic_results(vm.vid, SecurityProperty.CPU_AVAILABILITY)
        assert len(results) == 2
        assert results[-1].report.healthy is False
