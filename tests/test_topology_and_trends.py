"""Tests for the data-center topology and availability trend analysis."""

import pytest

from repro import CloudMonatt, SecurityProperty
from repro.common.errors import ConfigurationError
from repro.common.identifiers import ServerId
from repro.controller.response import ResponseAction
from repro.controller.topology import DataCenterTopology
from repro.properties.trends import AvailabilityTrendAnalyzer


class TestTopology:
    @pytest.fixture()
    def topo(self):
        topology = DataCenterTopology(rack_size=2)
        for index in range(1, 6):
            topology.add_server(ServerId(f"s{index}"))
        return topology

    def test_rack_fill_order(self, topo):
        assert topo.rack_of(ServerId("s1")) == "rack-1"
        assert topo.rack_of(ServerId("s2")) == "rack-1"
        assert topo.rack_of(ServerId("s3")) == "rack-2"
        assert topo.racks() == ["rack-1", "rack-2", "rack-3"]

    def test_distances(self, topo):
        assert topo.distance(ServerId("s1"), ServerId("s1")) == 0
        assert topo.distance(ServerId("s1"), ServerId("s2")) == 2   # same rack
        assert topo.distance(ServerId("s1"), ServerId("s3")) == 4   # via core

    def test_same_rack(self, topo):
        assert topo.same_rack(ServerId("s1"), ServerId("s2"))
        assert not topo.same_rack(ServerId("s1"), ServerId("s3"))

    def test_migration_distance_factor(self, topo):
        assert topo.migration_distance_factor(ServerId("s1"), ServerId("s2")) == 1.0
        assert topo.migration_distance_factor(ServerId("s1"), ServerId("s3")) == 1.5

    def test_nearest(self, topo):
        nearest = topo.nearest(
            ServerId("s1"), [ServerId("s3"), ServerId("s2"), ServerId("s5")]
        )
        assert nearest == ServerId("s2")
        assert topo.nearest(ServerId("s1"), []) is None

    def test_duplicate_rejected(self, topo):
        with pytest.raises(ConfigurationError):
            topo.add_server(ServerId("s1"))

    def test_unracked_rejected(self, topo):
        with pytest.raises(ConfigurationError):
            topo.rack_of(ServerId("ghost"))

    def test_bad_rack_size_rejected(self):
        with pytest.raises(ConfigurationError):
            DataCenterTopology(rack_size=0)


class TestTopologyAwareMigration:
    def test_migration_prefers_same_rack(self):
        """With a same-rack and a cross-rack candidate, the nearest wins."""
        cloud = CloudMonatt(num_servers=3, num_pcpus=1, seed=78, rack_size=2)
        cloud.controller.response.set_policy(
            SecurityProperty.CPU_AVAILABILITY, ResponseAction.MIGRATE
        )
        sids = list(cloud.servers)
        # racks: [s1, s2], [s3] — put the victim on s1
        alice = cloud.register_customer("alice")
        victim = alice.launch_vm(
            "small", "ubuntu",
            properties=[SecurityProperty.CPU_AVAILABILITY,
                        SecurityProperty.STARTUP_INTEGRITY],
            workload={"name": "cpu_bound"}, pins=[0],
            force_server=str(sids[0]),
        )
        alice.launch_vm(
            "medium", "ubuntu", workload={"name": "cpu_availability_attack"},
            pins=[0, 0], force_server=str(sids[0]),
        )
        result = alice.attest(victim.vid, SecurityProperty.CPU_AVAILABILITY)
        assert result.response["action"] == "migrate"
        destination = cloud.controller.database.vm(victim.vid).server
        assert destination == sids[1]  # the same-rack neighbour, not s3

    def test_cross_rack_migration_costs_more(self):
        """Same scenario, but the same-rack neighbour is full: the VM
        crosses racks and the memory copy takes measurably longer."""

        def migration_time(cross_rack: bool) -> float:
            cloud = CloudMonatt(num_servers=3, num_pcpus=2, seed=79, rack_size=2)
            cloud.controller.response.set_policy(
                SecurityProperty.CPU_AVAILABILITY, ResponseAction.MIGRATE
            )
            sids = list(cloud.servers)
            alice = cloud.register_customer("alice")
            victim = alice.launch_vm(
                "large", "ubuntu",
                properties=[SecurityProperty.CPU_AVAILABILITY,
                            SecurityProperty.STARTUP_INTEGRITY],
                workload={"name": "cpu_bound"},
                pins=[0, 0, 0, 0],
                force_server=str(sids[0]),
            )
            if cross_rack:
                # fill the same-rack neighbour (s2) so only s3 qualifies
                bob = cloud.register_customer("bob")
                for _ in range(2):
                    bob.launch_vm("large", "cirros", force_server=str(sids[1]))
            alice.launch_vm(
                "medium", "ubuntu",
                workload={"name": "cpu_availability_attack"}, pins=[0, 0],
                force_server=str(sids[0]),
            )
            result = alice.attest(victim.vid, SecurityProperty.CPU_AVAILABILITY)
            assert result.response["action"] == "migrate"
            return result.response["reaction_ms"]

        near = migration_time(cross_rack=False)
        far = migration_time(cross_rack=True)
        assert far > near * 1.2


class TestAvailabilityTrends:
    def test_healthy_series(self):
        analyzer = AvailabilityTrendAnalyzer()
        verdict = analyzer.analyze(
            [0, 10_000, 20_000, 30_000], [0.9, 0.95, 0.92, 0.93]
        )
        assert verdict.classification == "healthy"

    def test_transient_dip(self):
        analyzer = AvailabilityTrendAnalyzer()
        verdict = analyzer.analyze(
            [0, 10_000, 20_000, 30_000, 40_000], [0.9, 0.92, 0.9, 0.91, 0.1]
        )
        assert verdict.classification == "transient_dip"
        assert verdict.bad_run_length == 1

    def test_sustained_bad_run(self):
        analyzer = AvailabilityTrendAnalyzer(min_bad_run=3)
        verdict = analyzer.analyze(
            [0, 10_000, 20_000, 30_000, 40_000, 50_000],
            [0.9, 0.9, 0.9, 0.05, 0.06, 0.05],
        )
        assert verdict.classification == "sustained_degradation"
        assert verdict.bad_run_length == 3

    def test_significant_negative_slope(self):
        analyzer = AvailabilityTrendAnalyzer(min_bad_run=10)  # force slope path
        times = [i * 10_000 for i in range(8)]
        usages = [0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.15]
        verdict = analyzer.analyze(times, usages)
        assert verdict.classification == "sustained_degradation"
        assert verdict.slope_per_second < 0
        assert verdict.p_value < 0.05

    def test_short_series_uses_run_rule(self):
        analyzer = AvailabilityTrendAnalyzer(min_bad_run=2, min_points=4)
        verdict = analyzer.analyze([0, 10_000], [0.1, 0.1])
        assert verdict.classification == "sustained_degradation"

    def test_validation(self):
        with pytest.raises(ValueError):
            AvailabilityTrendAnalyzer(floor=1.5)
        with pytest.raises(ValueError):
            AvailabilityTrendAnalyzer(min_points=2)
        with pytest.raises(ValueError):
            AvailabilityTrendAnalyzer().analyze([0], [0.5, 0.5])

    def test_end_to_end_trend_from_as_history(self):
        """Periodic attestation feeds the AS history; the trend analyzer
        distinguishes the sustained starvation from noise."""
        cloud = CloudMonatt(num_servers=1, num_pcpus=1, seed=80)
        alice = cloud.register_customer("alice")
        victim = alice.launch_vm(
            "small", "ubuntu",
            properties=[SecurityProperty.CPU_AVAILABILITY,
                        SecurityProperty.STARTUP_INTEGRITY],
            workload={"name": "cpu_bound"}, pins=[0],
        )
        alice.start_periodic_attestation(
            victim.vid, SecurityProperty.CPU_AVAILABILITY, frequency_ms=15_000.0
        )
        cloud.run_for(50_000.0)  # healthy rounds
        healthy_trend = cloud.attestation_server.availability_trend(victim.vid)
        assert healthy_trend.classification == "healthy"
        alice.launch_vm(
            "medium", "ubuntu",
            workload={"name": "cpu_availability_attack"}, pins=[0, 0],
        )
        cloud.run_for(80_000.0)  # starved rounds accumulate
        attacked_trend = cloud.attestation_server.availability_trend(victim.vid)
        assert attacked_trend.classification == "sustained_degradation"
