"""Tests for canonical encoding: determinism, injectivity, round-trips."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import CryptoError
from repro.crypto.encoding import decode, encode

# Strategy for the protocol data model (JSON-ish values).
json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**256), max_value=2**256)
    | st.floats(allow_nan=False)
    | st.text(max_size=40)
    | st.binary(max_size=40),
    lambda children: st.lists(children, max_size=5)
    | st.dictionaries(st.text(max_size=10), children, max_size=5),
    max_leaves=20,
)


class TestRoundTrip:
    @given(json_values)
    def test_decode_inverts_encode(self, value):
        decoded = decode(encode(value))
        # tuples normalize to lists; our strategy only produces lists
        assert decoded == value

    def test_tuple_normalizes_to_list(self):
        assert decode(encode((1, 2))) == [1, 2]

    def test_bytearray_normalizes_to_bytes(self):
        assert decode(encode(bytearray(b"ab"))) == b"ab"


class TestCanonicity:
    def test_dict_order_does_not_matter(self):
        assert encode({"a": 1, "b": 2}) == encode({"b": 2, "a": 1})

    def test_equal_values_equal_bytes(self):
        assert encode([1, "x", b"y"]) == encode([1, "x", b"y"])


class TestInjectivity:
    """Distinct values must encode distinctly (anti-ambiguity)."""

    def test_str_vs_bytes(self):
        assert encode("ab") != encode(b"ab")

    def test_int_vs_float(self):
        assert encode(1) != encode(1.0)

    def test_bool_vs_int(self):
        assert encode(True) != encode(1)
        assert encode(False) != encode(0)

    def test_concatenation_ambiguity_ruled_out(self):
        # the classic "a"+"bc" == "ab"+"c" attack on || hashing
        assert encode(["a", "bc"]) != encode(["ab", "c"])

    def test_nesting_matters(self):
        assert encode([[1], 2]) != encode([1, [2]])

    @given(json_values, json_values)
    def test_distinct_values_distinct_encodings(self, a, b):
        if a != b:
            assert encode(a) != encode(b)


class TestErrors:
    def test_unsupported_type_rejected(self):
        with pytest.raises(CryptoError):
            encode(object())

    def test_non_str_dict_key_rejected(self):
        with pytest.raises(CryptoError):
            encode({1: "x"})

    def test_trailing_garbage_rejected(self):
        with pytest.raises(CryptoError):
            decode(encode(1) + b"\x00")

    def test_truncated_blob_rejected(self):
        blob = encode("hello world")
        with pytest.raises(CryptoError):
            decode(blob[:-1])

    def test_empty_blob_rejected(self):
        with pytest.raises(CryptoError):
            decode(b"")

    def test_unknown_tag_rejected(self):
        with pytest.raises(CryptoError):
            decode(b"Z")

    def test_invalid_utf8_string_rejected(self):
        import struct

        blob = b"S" + struct.pack(">I", 1) + b"\x80"
        with pytest.raises(CryptoError):
            decode(blob)

    def test_hostile_deep_nesting_rejected(self):
        value = "x"
        for _ in range(200):
            value = [value]
        blob = encode(value)
        with pytest.raises(CryptoError):
            decode(blob)
