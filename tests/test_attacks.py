"""Tests for the two scheduler attacks — they must reproduce the paper's
qualitative results before the monitoring layers can detect them."""

import pytest

from repro.attacks import (
    AvailabilityAttackWorkload,
    CovertChannelReceiver,
    CovertChannelSender,
    decode_intervals,
)
from repro.attacks.covert_channel import bit_accuracy
from repro.common.identifiers import VmId
from repro.monitors import RunIntervalHistogram
from repro.xen import CpuBoundWorkload, FiniteCpuBoundWorkload, Hypervisor


class TestCovertChannel:
    BITS = [1, 0, 1, 1, 0, 0, 1, 0]

    def _run_channel(self, duration_ms=6000.0):
        hv = Hypervisor()
        sender = CovertChannelSender(self.BITS)
        receiver = CovertChannelReceiver(VmId("receiver"))
        histogram = RunIntervalHistogram()
        hv.add_monitor(receiver)
        hv.add_monitor(histogram)
        hv.create_domain(VmId("sender"), sender)
        hv.create_domain(VmId("receiver"), CovertChannelReceiver.workload())
        hv.run_for(duration_ms)
        return hv, sender, receiver, histogram

    def test_sender_histogram_is_bimodal(self):
        _, sender, _, histogram = self._run_channel()
        counts = histogram.histogram(VmId("sender"))
        # mass concentrates at the two symbol durations (bins 4 and 24)
        zero_bin = int(sender.zero_ms) - 1
        one_bin = int(sender.one_ms) - 1
        mass = sum(counts)
        near_zero = sum(counts[max(zero_bin - 1, 0):zero_bin + 2])
        near_one = sum(counts[max(one_bin - 1, 0):one_bin + 2])
        assert near_zero / mass > 0.25
        assert near_one / mass > 0.25
        assert (near_zero + near_one) / mass > 0.8

    def test_benign_histogram_is_unimodal_at_timeslice(self):
        hv = Hypervisor()
        histogram = RunIntervalHistogram()
        hv.add_monitor(histogram)
        hv.create_domain(VmId("benign"), CpuBoundWorkload())
        hv.create_domain(VmId("other"), CpuBoundWorkload())
        hv.run_for(6000.0)
        counts = histogram.histogram(VmId("benign"))
        assert counts[-1] / sum(counts) > 0.8

    def test_receiver_decodes_transmitted_bits(self):
        _, sender, receiver, _ = self._run_channel()
        durations = [gap for _, gap in receiver.observed_gaps]
        decoded = decode_intervals(durations, sender.zero_ms, sender.one_ms)
        assert len(decoded) >= 2 * len(self.BITS)
        # a real receiver synchronizes on a preamble; equivalently, align
        # the repeating pattern at the best cyclic phase
        best = 0.0
        for phase in range(len(self.BITS)):
            pattern = self.BITS[phase:] + self.BITS[:phase]
            sent = (pattern * (len(decoded) // len(pattern) + 1))[: len(decoded)]
            best = max(best, bit_accuracy(sent, decoded))
        assert best > 0.9

    def test_bandwidth_reported(self):
        sender = CovertChannelSender(self.BITS, zero_ms=1.0, one_ms=3.0, gap_ms=1.0)
        assert sender.bandwidth_bps == pytest.approx(1000.0 / 3.0)

    def test_sender_validation(self):
        with pytest.raises(ValueError):
            CovertChannelSender([])
        with pytest.raises(ValueError):
            CovertChannelSender([1], zero_ms=10.0, one_ms=5.0)

    def test_non_repeating_sender_terminates(self):
        hv = Hypervisor()
        sender = CovertChannelSender([1, 0, 1], repeat=False)
        dom = hv.create_domain(VmId("sender"), sender)
        hv.run_for(2000.0)
        assert not dom.live
        assert sender.bits_sent == 3


class TestAvailabilityAttack:
    VICTIM_WORK_MS = 1000.0

    def _victim_slowdown(self, attacker_workload, num_attacker_vcpus=1):
        hv = Hypervisor()
        hv.create_domain(VmId("victim"), FiniteCpuBoundWorkload(self.VICTIM_WORK_MS))
        if attacker_workload is not None:
            hv.create_domain(
                VmId("attacker"),
                attacker_workload,
                num_vcpus=num_attacker_vcpus,
                pcpus=[0] * num_attacker_vcpus,
            )
        finish = hv.run_until_domain_finishes(VmId("victim"), max_ms=100_000.0)
        return finish / self.VICTIM_WORK_MS

    def test_attack_starves_victim_beyond_10x(self):
        slowdown = self._victim_slowdown(AvailabilityAttackWorkload(), 2)
        assert slowdown > 10.0

    def test_fair_cpu_bound_only_doubles(self):
        slowdown = self._victim_slowdown(CpuBoundWorkload())
        assert 1.7 <= slowdown <= 2.4

    def test_attack_monopolizes_cpu(self):
        hv = Hypervisor()
        victim = hv.create_domain(VmId("victim"), CpuBoundWorkload())
        attacker = hv.create_domain(
            VmId("attacker"), AvailabilityAttackWorkload(), num_vcpus=2, pcpus=[0, 0]
        )
        hv.run_for(10_000.0)
        assert attacker.relative_cpu_usage(hv.now) > 0.75
        assert victim.relative_cpu_usage(hv.now) < 0.15

    def test_margin_validation(self):
        with pytest.raises(ValueError):
            AvailabilityAttackWorkload(margin_before_ms=0.0)
        with pytest.raises(ValueError):
            AvailabilityAttackWorkload(margin_before_ms=6.0, margin_after_ms=5.0)

    def test_attack_helper_vcpu_nearly_idle(self):
        hv = Hypervisor()
        attacker = hv.create_domain(
            VmId("attacker"), AvailabilityAttackWorkload(), num_vcpus=2, pcpus=[0, 0]
        )
        hv.run_for(5000.0)
        runner, helper = attacker.vcpus
        assert helper.cumulative_runtime < 0.05 * runner.cumulative_runtime
