"""Tests for §5's lifecycle behaviours: launch retry on platform failure
and the suspend → recheck → auto-resume loop."""

import pytest

from repro import CloudMonatt, SecurityProperty
from repro.attacks.image_tampering import tamper_platform
from repro.controller.response import ResponseAction
from repro.lifecycle.states import VmState
from repro.monitors.integrity_unit import SoftwareInventory


class TestLaunchRetry:
    def _cloud_with_one_bad_server(self):
        """Server 1 has a backdoored hypervisor; server 2 is pristine.

        The bad server is made *more attractive* to the scheduler (more
        pCPUs → more free capacity) so the first placement lands there.
        """
        cloud = CloudMonatt(num_servers=1, seed=66)
        cloud.servers.clear()
        cloud.controller.database._servers.clear()
        bad = cloud.add_server(
            num_pcpus=8,
            platform_inventory=tamper_platform(
                SoftwareInventory.pristine_platform()
            ),
            trust_platform=False,
        )
        good = cloud.add_server(num_pcpus=2)
        return cloud, bad, good

    def test_platform_failure_retries_on_another_server(self):
        cloud, bad, good = self._cloud_with_one_bad_server()
        alice = cloud.register_customer("alice")
        result = alice.launch_vm(
            "small", "cirros", properties=[SecurityProperty.STARTUP_INTEGRITY]
        )
        assert result.accepted
        assert result.report.healthy
        placed = cloud.controller.database.vm(result.vid).server
        assert placed == good.server_id

    def test_retry_recorded_in_provenance(self):
        cloud, bad, good = self._cloud_with_one_bad_server()
        alice = cloud.register_customer("alice")
        result = alice.launch_vm(
            "small", "cirros", properties=[SecurityProperty.STARTUP_INTEGRITY]
        )
        events = [r.event for r in cloud.controller.provenance]
        assert "platform_failed_retrying" in events
        # the failed attempt's VM id differs from the final one
        failed = next(
            r for r in cloud.controller.provenance
            if r.event == "platform_failed_retrying"
        )
        assert failed.payload["vid"] != str(result.vid)
        assert failed.payload["server"] == str(bad.server_id)

    def test_bad_image_is_not_retried(self):
        """§5.1: a compromised image rejects the launch outright — no
        other server would help."""
        from repro.lifecycle.flavors import VmImage

        cloud = CloudMonatt(num_servers=2, seed=67)
        cloud.controller.images["evil"] = VmImage(
            name="evil", size_mb=25, content=b"trojaned"
        )
        for attestation_server in cloud.attestation_servers:
            attestation_server.interpreter.trust_image(
                VmImage(name="evil", size_mb=25, content=b"pristine")
            )
        alice = cloud.register_customer("alice")
        result = alice.launch_vm(
            "small", "evil", properties=[SecurityProperty.STARTUP_INTEGRITY]
        )
        assert not result.accepted
        # exactly one launch attempt (no retry loop)
        attempts = [
            r for r in cloud.controller.provenance if r.event == "scheduled"
        ]
        assert len(attempts) == 1

    def test_all_servers_bad_exhausts_retries(self):
        from repro.common.errors import PlacementError

        cloud = CloudMonatt(num_servers=1, seed=68)
        cloud.servers.clear()
        cloud.controller.database._servers.clear()
        for _ in range(2):
            cloud.add_server(
                platform_inventory=tamper_platform(
                    SoftwareInventory.pristine_platform()
                ),
                trust_platform=False,
            )
        alice = cloud.register_customer("alice")
        with pytest.raises(PlacementError):
            alice.launch_vm(
                "small", "cirros",
                properties=[SecurityProperty.STARTUP_INTEGRITY],
            )


class TestAutoResume:
    def _suspended_victim(self):
        cloud = CloudMonatt(num_servers=1, num_pcpus=1, seed=69)
        cloud.controller.response.set_policy(
            SecurityProperty.CPU_AVAILABILITY, ResponseAction.SUSPEND
        )
        alice = cloud.register_customer("alice")
        victim = alice.launch_vm(
            "small", "ubuntu",
            properties=[SecurityProperty.CPU_AVAILABILITY,
                        SecurityProperty.STARTUP_INTEGRITY],
            workload={"name": "cpu_bound"}, pins=[0],
        )
        attacker = alice.launch_vm(
            "medium", "ubuntu",
            workload={"name": "cpu_availability_attack"}, pins=[0, 0],
        )
        result = alice.attest(victim.vid, SecurityProperty.CPU_AVAILABILITY)
        assert result.response["action"] == "suspend"
        return cloud, alice, victim, attacker

    def test_stays_suspended_while_attack_persists(self):
        cloud, alice, victim, _ = self._suspended_victim()
        cloud.run_for(70_000.0)  # several checks, attacker still hogging
        assert cloud.controller.database.vm(victim.vid).state is VmState.SUSPENDED
        checks = [
            r for r in cloud.controller.provenance
            if r.event == "resume_check_failed"
        ]
        assert checks
        assert all(
            c.payload["worst_co_resident_share"] > 0.85 for c in checks
        )

    def test_auto_resumes_after_the_attacker_leaves(self):
        cloud, alice, victim, attacker = self._suspended_victim()
        cloud.run_for(25_000.0)
        alice.terminate_vm(attacker.vid)
        cloud.run_for(50_000.0)  # the next checks see a quiet server
        record = cloud.controller.database.vm(victim.vid)
        assert record.state is VmState.ACTIVE
        events = [r.event for r in cloud.controller.vm_provenance(victim.vid)]
        assert "auto_resumed" in events
        # and the VM is healthy again
        verdict = alice.attest(victim.vid, SecurityProperty.CPU_AVAILABILITY)
        assert verdict.report.healthy

    def test_manual_termination_stops_the_watch(self):
        cloud, alice, victim, _ = self._suspended_victim()
        alice.terminate_vm(victim.vid)
        cloud.run_for(80_000.0)  # checks fire but must do nothing
        assert cloud.controller.database.vm(victim.vid).state is VmState.TERMINATED
