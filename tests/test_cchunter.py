"""Tests for CC-Hunter-style event-train analysis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.bus_covert_channel import (
    BusCovertChannelSender,
    RandomizedRateBusSender,
)
from repro.common.identifiers import VmId
from repro.common.rng import DeterministicRng
from repro.monitors.bus_monitor import BusActivityTrace, BusLockHistogram
from repro.monitors.monitor_module import MEAS_BUS_LOCK_HISTOGRAM
from repro.properties import CovertChannelInterpreter
from repro.properties.cchunter import (
    CcHunterDetector,
    autocorrelation,
    correlation_width,
    periodicity_score,
)
from repro.xen import Hypervisor, MemoryStreamingWorkload

BITS = [1, 0, 1, 1, 0, 0, 1, 0]


def trace_for(workload, duration_ms=4000.0):
    hv = Hypervisor(num_pcpus=2)
    trace = BusActivityTrace(VmId("sender"))
    histogram = BusLockHistogram()
    hv.add_monitor(trace)
    hv.add_monitor(histogram)
    hv.create_domain(VmId("sender"), workload, pcpus=[1])
    hv.run_for(duration_ms)
    return trace, histogram


class TestSignalPrimitives:
    def test_autocorrelation_of_constant_is_zero(self):
        corr = autocorrelation([5.0] * 100, max_lag=20)
        assert all(value == 0.0 for value in corr)

    def test_autocorrelation_of_periodic_signal_peaks_at_period(self):
        signal = ([1.0] * 10 + [0.0] * 10) * 10
        corr = autocorrelation(signal, max_lag=50)
        score, lag = periodicity_score(corr, min_lag=5)
        assert lag == 20
        assert score > 0.8

    def test_autocorrelation_r0_is_one(self):
        corr = autocorrelation([1.0, 2.0, 3.0, 1.0, 2.0, 3.0] * 10, max_lag=10)
        assert corr[0] == pytest.approx(1.0)

    def test_empty_signal(self):
        assert autocorrelation([], max_lag=5).tolist() == [0.0] * 6

    def test_correlation_width_of_block_signal(self):
        # 10-sample blocks of iid noise: plateau ~10 samples wide
        rng = DeterministicRng(3)
        signal = []
        for _ in range(80):
            value = rng.uniform(0.0, 10.0)
            signal.extend([value] * 10)
        corr = autocorrelation(signal, max_lag=60)
        width = correlation_width(corr)
        assert 6 <= width <= 14

    @given(st.lists(st.floats(min_value=0.0, max_value=10.0),
                    min_size=30, max_size=100))
    @settings(max_examples=25)
    def test_autocorrelation_bounded(self, signal):
        corr = autocorrelation(signal, max_lag=20)
        assert all(-1.0001 <= value <= 1.0001 for value in corr)


class TestDetectorOnSyntheticSignals:
    def test_on_off_keying_detected(self):
        detector = CcHunterDetector()
        signal = ([20.0] * 10 + [0.0] * 10) * 20
        verdict = detector.analyze(signal)
        assert verdict.covert
        assert "periodic" in verdict.reason or "symbol" in verdict.reason

    def test_constant_rate_benign(self):
        verdict = CcHunterDetector().analyze([8.0] * 400)
        assert not verdict.covert
        assert "steady" in verdict.reason

    def test_silence_benign(self):
        assert not CcHunterDetector().analyze([0.0] * 400).covert

    def test_short_bursts_benign(self):
        # 1-sample bursts every ~7 samples, jittered: I/O-like traffic
        rng = DeterministicRng(9)
        signal = [0.0] * 600
        position = 0
        while position < 590:
            signal[position] = rng.uniform(3.0, 8.0)
            position += rng.randint(5, 9)
        verdict = CcHunterDetector().analyze(signal)
        assert not verdict.covert


class TestDetectorOnSimulatedTraffic:
    def test_fixed_rate_sender_detected(self):
        trace, _ = trace_for(BusCovertChannelSender(BITS))
        verdict = CcHunterDetector().analyze(trace.rate_series())
        assert verdict.covert

    def test_streaming_workload_benign(self):
        trace, _ = trace_for(MemoryStreamingWorkload(lock_rate_per_ms=8.0))
        verdict = CcHunterDetector().analyze(trace.rate_series())
        assert not verdict.covert

    def test_randomized_sender_evades_histogram(self):
        """The adaptive sender's rate distribution is too smeared for
        the peak detector..."""
        sender = RandomizedRateBusSender(BITS, DeterministicRng(4))
        trace, histogram = trace_for(sender)
        report = CovertChannelInterpreter().interpret(
            VmId("sender"),
            {MEAS_BUS_LOCK_HISTOGRAM: histogram.histogram(VmId("sender"))},
        )
        assert report.healthy, "histogram analysis alone must be evaded"

    def test_cchunter_catches_the_randomized_sender(self):
        """...but its symbol cells light up the autocorrelation."""
        sender = RandomizedRateBusSender(BITS, DeterministicRng(4))
        trace, _ = trace_for(sender)
        verdict = CcHunterDetector().analyze(trace.rate_series())
        assert verdict.covert
        assert verdict.variance_ratio > 0.05

    def test_trace_reset(self):
        trace, _ = trace_for(MemoryStreamingWorkload())
        assert trace.segments
        trace.reset()
        assert trace.rate_series() == []

    def test_randomized_sender_validation(self):
        with pytest.raises(ValueError):
            RandomizedRateBusSender([], DeterministicRng(0))
        with pytest.raises(ValueError):
            RandomizedRateBusSender(
                [1], DeterministicRng(0),
                low_band=(0.0, 15.0), high_band=(10.0, 20.0),
            )
