"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for argv in (["demo"], ["attack", "rootkit"],
                     ["verify-protocol"], ["leak-analysis"],
                     ["export-proverif"], ["launch-matrix"]):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["attack", "quantum"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        output = capsys.readouterr().out
        assert "launch accepted" in output
        assert "runtime attestations" in output

    def test_attack_rootkit(self, capsys):
        assert main(["attack", "rootkit"]) == 0
        output = capsys.readouterr().out
        assert "COMPROMISED" in output
        assert "cryptominer" in output

    def test_attack_availability(self, capsys):
        assert main(["attack", "availability"]) == 0
        output = capsys.readouterr().out
        assert "COMPROMISED" in output
        assert "migrate" in output

    def test_attack_tampered_image(self, capsys):
        assert main(["attack", "tampered-image"]) == 0
        output = capsys.readouterr().out
        assert "launch accepted: False" in output

    def test_verify_protocol_standard(self, capsys):
        assert main(["verify-protocol"]) == 0
        output = capsys.readouterr().out
        assert "0 attack(s) found" in output

    def test_verify_protocol_weakened_finds_attacks(self, capsys):
        assert main(["verify-protocol", "--variant", "plaintext"]) == 0
        output = capsys.readouterr().out
        assert "ATTACK FOUND" in output

    def test_leak_analysis(self, capsys):
        assert main(["leak-analysis"]) == 0
        output = capsys.readouterr().out
        assert "leak SKc:" in output

    def test_export_proverif_stdout(self, capsys):
        assert main(["export-proverif"]) == 0
        assert "process" in capsys.readouterr().out

    def test_export_proverif_file(self, tmp_path, capsys):
        path = str(tmp_path / "model.pv")
        assert main(["export-proverif", path]) == 0
        with open(path, encoding="utf-8") as handle:
            assert "CloudMonatt" in handle.read()

    def test_seed_flag(self, capsys):
        assert main(["--seed", "7", "attack", "rootkit"]) == 0
