"""Tests for the command-line interface."""

import json
import pathlib

import pytest

from repro.cli import build_parser, main

EXAMPLE_POLICY = (
    pathlib.Path(__file__).resolve().parent.parent
    / "examples" / "policies" / "continuous_monitoring.json"
)


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    """One recorded demo run shared by the artifact-reading tests."""
    path = str(tmp_path_factory.mktemp("trace") / "trace.jsonl")
    assert main(["--seed", "7", "--telemetry-out", path, "demo"]) == 0
    return path


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for argv in (["demo"], ["attack", "rootkit"],
                     ["verify-protocol"], ["leak-analysis"],
                     ["export-proverif"], ["launch-matrix"],
                     ["policy", "validate", "p.json"],
                     ["policy", "show", "p.json"],
                     ["policy", "status"]):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["attack", "quantum"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        output = capsys.readouterr().out
        assert "launch accepted" in output
        assert "runtime attestations" in output

    def test_attack_rootkit(self, capsys):
        assert main(["attack", "rootkit"]) == 0
        output = capsys.readouterr().out
        assert "COMPROMISED" in output
        assert "cryptominer" in output

    def test_attack_availability(self, capsys):
        assert main(["attack", "availability"]) == 0
        output = capsys.readouterr().out
        assert "COMPROMISED" in output
        assert "migrate" in output

    def test_attack_tampered_image(self, capsys):
        assert main(["attack", "tampered-image"]) == 0
        output = capsys.readouterr().out
        assert "launch accepted: False" in output

    def test_verify_protocol_standard(self, capsys):
        assert main(["verify-protocol"]) == 0
        output = capsys.readouterr().out
        assert "0 attack(s) found" in output

    def test_verify_protocol_weakened_finds_attacks(self, capsys):
        assert main(["verify-protocol", "--variant", "plaintext"]) == 0
        output = capsys.readouterr().out
        assert "ATTACK FOUND" in output

    def test_leak_analysis(self, capsys):
        assert main(["leak-analysis"]) == 0
        output = capsys.readouterr().out
        assert "leak SKc:" in output

    def test_export_proverif_stdout(self, capsys):
        assert main(["export-proverif"]) == 0
        assert "process" in capsys.readouterr().out

    def test_export_proverif_file(self, tmp_path, capsys):
        path = str(tmp_path / "model.pv")
        assert main(["export-proverif", path]) == 0
        with open(path, encoding="utf-8") as handle:
            assert "CloudMonatt" in handle.read()

    def test_seed_flag(self, capsys):
        assert main(["--seed", "7", "attack", "rootkit"]) == 0


class TestObservatoryCommands:
    def test_health_renders_the_scoreboard(self, trace_path, capsys):
        assert main(["health", trace_path]) == 0
        output = capsys.readouterr().out
        assert "Fleet health" in output
        assert "vm-0001" in output
        assert "SLO compliance" in output

    def test_health_json_is_parseable(self, trace_path, capsys):
        import json

        assert main(["health", trace_path, "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert "vms" in snapshot

    def test_alerts_lists_and_counts(self, trace_path, capsys):
        assert main(["alerts", trace_path]) == 0
        assert "alert(s)" in capsys.readouterr().out

    def test_trace_leg_table(self, trace_path, capsys):
        assert main(["trace", trace_path]) == 0
        output = capsys.readouterr().out
        assert "per-leg latency" in output
        assert "protocol.q1.customer_controller" in output

    def test_trace_filters(self, trace_path, capsys):
        assert main(["trace", trace_path, "--vid", "vm-0001",
                     "--leg", "protocol.q2.controller_as"]) == 0
        output = capsys.readouterr().out
        assert "protocol.q2.controller_as" in output
        assert "span(s)" in output

    def test_trace_waterfall(self, trace_path, capsys):
        assert main(["trace", trace_path, "--waterfall", "0"]) == 0
        output = capsys.readouterr().out
        assert "waterfall: protocol.q1.customer_controller" in output
        assert "#" in output

    def test_trace_waterfall_out_of_range(self, trace_path, capsys):
        assert main(["trace", trace_path, "--waterfall", "99"]) == 2
        assert "out of range" in capsys.readouterr().err

    def test_telemetry_summarizes_an_artifact(self, trace_path, capsys):
        assert main(["telemetry", trace_path]) == 0
        assert "trace summary" in capsys.readouterr().out

    def test_malformed_trace_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type":"meta"}\nnot json\n', encoding="utf-8")
        with pytest.raises(SystemExit) as excinfo:
            main(["health", str(bad)])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "malformed JSONL line" in err
        assert ":2:" in err

    def test_missing_trace_exits_two(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["alerts", str(tmp_path / "missing.jsonl")])
        assert excinfo.value.code == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_health_without_scoreboard_exits_two(self, tmp_path, capsys):
        bare = tmp_path / "bare.jsonl"
        bare.write_text('{"type":"meta","seed":1}\n', encoding="utf-8")
        assert main(["health", str(bare)]) == 2
        assert "no scoreboard snapshot" in capsys.readouterr().err

    def test_prometheus_format(self, tmp_path, capsys):
        path = str(tmp_path / "metrics.prom")
        assert main(["--seed", "7", "--telemetry-out", path,
                     "--telemetry-format", "prometheus", "demo"]) == 0
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        assert "# TYPE" in text
        assert "_total" in text
        assert "_bucket{" in text

    def test_telemetry_surfaces_degraded_path_counters(self, capsys):
        # a clean run still prints the degraded-path section, so a
        # struggling fleet is visible without grepping raw artifacts
        assert main(["--seed", "7", "telemetry"]) == 0
        output = capsys.readouterr().out
        assert "=== degraded paths ===" in output
        assert "pipeline.batch.fallbacks" in output
        assert "crypto.keypool.exhausted" in output

    def test_slo_flags_silence_alerts(self, tmp_path, capsys):
        path = str(tmp_path / "quiet.jsonl")
        assert main(["--seed", "7", "--telemetry-out", path,
                     "--slo-q1", "99999", "--slo-q2", "99999",
                     "--slo-q3", "99999", "--slo-appraisal", "99999",
                     "demo"]) == 0
        capsys.readouterr()
        assert main(["alerts", path, "--fail-on-alert"]) == 0
        assert "0 alert(s)" in capsys.readouterr().out


class TestPolicyCommands:
    @pytest.fixture()
    def policy_path(self, tmp_path):
        path = tmp_path / "policy.json"
        path.write_text(json.dumps({
            "name": "prod",
            "version": 1,
            "entities": ["vm-0001", "vm-0002"],
            "checks": [{
                "name": "runtime",
                "property": "runtime_integrity",
                "period_ms": 2000.0,
                "staleness_budget_ms": 6000.0,
            }],
        }), encoding="utf-8")
        return str(path)

    def test_validate_accepts_a_good_policy(self, policy_path, capsys):
        assert main(["policy", "validate", policy_path]) == 0
        output = capsys.readouterr().out
        assert "policy 'prod' v1 OK" in output
        assert "2 schedule entries" in output

    def test_validate_accepts_the_shipped_example(self, capsys):
        assert main(["policy", "validate", str(EXAMPLE_POLICY)]) == 0
        assert "'production-baseline' v1 OK" in capsys.readouterr().out

    def test_validate_rejects_unknown_property(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({
            "name": "p", "version": 1, "entities": ["vm-0001"],
            "checks": [{"name": "c", "property": "disk_quota",
                        "period_ms": 1000.0,
                        "staleness_budget_ms": 3000.0}],
        }), encoding="utf-8")
        with pytest.raises(SystemExit) as excinfo:
            main(["policy", "validate", str(bad)])
        assert excinfo.value.code == 1
        assert "unknown property" in capsys.readouterr().err

    def test_validate_rejects_non_positive_period(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({
            "name": "p", "version": 1, "entities": ["vm-0001"],
            "checks": [{"name": "c", "property": "runtime_integrity",
                        "period_ms": 0,
                        "staleness_budget_ms": 3000.0}],
        }), encoding="utf-8")
        with pytest.raises(SystemExit) as excinfo:
            main(["policy", "validate", str(bad)])
        assert excinfo.value.code == 1
        assert "period_ms must be positive" in capsys.readouterr().err

    def test_malformed_json_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(SystemExit) as excinfo:
            main(["policy", "validate", str(bad)])
        assert excinfo.value.code == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_missing_file_exits_two(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["policy", "show", str(tmp_path / "missing.json")])
        assert excinfo.value.code == 2
        assert "cannot read policy" in capsys.readouterr().err

    def test_show_renders_the_compiled_table(self, policy_path, capsys):
        assert main(["policy", "show", policy_path]) == 0
        output = capsys.readouterr().out
        assert "policy prod v1" in output
        assert "runtime_integrity" in output
        assert "period_ms" in output

    def test_status_runs_a_monitored_demo_fleet(self, capsys):
        assert main(["--seed", "7", "policy", "status", "--vms", "2",
                     "--duration-ms", "6000"]) == 0
        output = capsys.readouterr().out
        assert "policy status after 6000 ms" in output
        assert "runtime" in output
        assert "alarm transition(s)" in output
