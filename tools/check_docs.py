#!/usr/bin/env python
"""Documentation checks: link/path integrity, snippets, docstrings.

Three modes, combinable (CI's docs job runs all of them):

``--links``
    Scans the repository's Markdown files and verifies that
    (a) every relative Markdown link ``[text](path)`` resolves to a
    real file or directory, and (b) every inline-code repo path token
    (```src/...``, ``docs/...``, ``tests/...``, ``benchmarks/...``,
    ``examples/...``, ``tools/...``, ``.github/...``, or a root-level
    ``*.md`` / ``*.txt``) points at something that exists. Paths that
    describe external material (PAPER.md, PAPERS.md, SNIPPETS.md,
    ISSUE.md, CHANGES.md) are exempt, as are glob-style tokens.

``--snippets``
    Executes every ```` ```python ```` fenced block in README.md in a
    fresh namespace, then runs the quick example scripts end to end —
    the documentation's code must keep working, not just parse.

``--docstrings``
    Walks the operator-facing packages (``src/repro/shard/``,
    ``src/repro/policy/``) and fails on any *public* module, class,
    function or method without a docstring. Underscore-prefixed names
    and dunders other than ``__init__``'s enclosing class are skipped —
    the contract is that everything an operator can reach by name
    explains itself.

Exit status is non-zero on any failure; findings are printed one per
line as ``file: problem``.
"""

from __future__ import annotations

import argparse
import ast
import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Markdown files whose path-like tokens describe *external* artifacts
#: (the paper, related repos, the per-PR task) rather than this repo.
PATH_CHECK_EXEMPT = {"PAPER.md", "PAPERS.md", "SNIPPETS.md", "ISSUE.md",
                     "CHANGES.md"}

#: First path segment that marks an inline-code token as a repo path.
REPO_DIRS = {"src", "docs", "tests", "benchmarks", "examples", "tools",
             ".github"}

#: Extensions that mark a slash-less token as a root-level repo file.
ROOT_FILE_SUFFIXES = (".md", ".txt")

#: Examples fast enough for a CI smoke run (wall seconds each).
QUICK_EXAMPLES = ("quickstart.py", "fault_tolerance.py")

#: Packages (directories) or single modules whose public API must be
#: fully docstring-covered.
DOCSTRING_PACKAGES = ("src/repro/shard", "src/repro/policy",
                      "src/repro/common/procpool.py")

MARKDOWN_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
INLINE_CODE = re.compile(r"`([^`\n]+)`")
FENCED_BLOCK = re.compile(r"^```")


def _markdown_files() -> list[Path]:
    files = sorted(REPO_ROOT.glob("*.md")) + sorted(REPO_ROOT.glob("docs/*.md"))
    return [path for path in files if path.is_file()]


def _strip_fenced_blocks(text: str) -> str:
    """Drop fenced code blocks — shell transcripts are not doc claims."""
    kept: list[str] = []
    in_fence = False
    for line in text.splitlines():
        if FENCED_BLOCK.match(line.strip()):
            in_fence = not in_fence
            continue
        if not in_fence:
            kept.append(line)
    return "\n".join(kept)


def _is_repo_path_token(token: str) -> bool:
    if any(ch in token for ch in "*{}$ <>"):
        return False
    if token.startswith(("/", "-")):
        return False
    if "/" in token:
        return token.split("/", 1)[0] in REPO_DIRS
    return token.endswith(ROOT_FILE_SUFFIXES)


def check_links() -> list[str]:
    problems: list[str] = []
    for path in _markdown_files():
        rel = path.relative_to(REPO_ROOT)
        text = path.read_text(encoding="utf-8")
        prose = _strip_fenced_blocks(text)

        for match in MARKDOWN_LINK.finditer(prose):
            target = match.group(1).split("#", 1)[0]
            if not target or "://" in target or target.startswith("mailto:"):
                continue
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                problems.append(f"{rel}: broken link -> {match.group(1)}")

        if rel.name in PATH_CHECK_EXEMPT:
            continue
        for match in INLINE_CODE.finditer(prose):
            token = match.group(1).split("::", 1)[0].strip()
            if not _is_repo_path_token(token):
                continue
            if not (REPO_ROOT / token.rstrip("/")).exists():
                problems.append(f"{rel}: missing repo path -> {token}")
    return problems


def _python_blocks(text: str) -> list[str]:
    blocks: list[str] = []
    lines = text.splitlines()
    block: list[str] | None = None
    for line in lines:
        stripped = line.strip()
        if block is None and stripped.startswith("```python"):
            block = []
        elif block is not None and stripped.startswith("```"):
            blocks.append("\n".join(block))
            block = None
        elif block is not None:
            block.append(line)
    return blocks


def check_snippets() -> list[str]:
    problems: list[str] = []
    sys.path.insert(0, str(REPO_ROOT / "src"))

    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for index, block in enumerate(_python_blocks(readme)):
        print(f"running README.md python block #{index}...")
        try:
            exec(compile(block, f"README.md#block{index}", "exec"), {})
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            problems.append(f"README.md: python block #{index} failed: {exc!r}")

    for name in QUICK_EXAMPLES:
        script = REPO_ROOT / "examples" / name
        print(f"running examples/{name}...")
        completed = subprocess.run(
            [sys.executable, str(script)],
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
            capture_output=True,
            text=True,
            timeout=600,
        )
        if completed.returncode != 0:
            tail = completed.stderr.strip().splitlines()[-5:]
            problems.append(
                f"examples/{name}: exit {completed.returncode}: "
                + " | ".join(tail)
            )
    return problems


def _public_defs(tree: ast.Module):
    """Yield (qualname, node) for every public def/class in a module.

    Nested helper functions (defs inside function bodies) are private
    by construction; only module- and class-level names are public API.
    """
    def walk(node, prefix: str, inside_class: bool):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                name = child.name
                if name.startswith("_") and not (
                    inside_class and name == "__init__"
                ):
                    continue
                qualname = f"{prefix}{name}"
                if inside_class and name == "__init__":
                    # documented classes may leave __init__ bare — the
                    # class docstring covers construction
                    continue
                yield qualname, child
                if isinstance(child, ast.ClassDef):
                    yield from walk(child, qualname + ".", True)

    yield from walk(tree, "", False)


def check_docstrings() -> list[str]:
    problems: list[str] = []
    for package in DOCSTRING_PACKAGES:
        root = REPO_ROOT / package
        if root.is_file():
            paths = [root]
        elif root.is_dir():
            paths = sorted(root.rglob("*.py"))
        else:
            problems.append(f"{package}: docstring-checked package missing")
            continue
        for path in paths:
            rel = path.relative_to(REPO_ROOT)
            tree = ast.parse(path.read_text(encoding="utf-8"), str(rel))
            if ast.get_docstring(tree) is None:
                problems.append(f"{rel}: module has no docstring")
            for qualname, node in _public_defs(tree):
                if ast.get_docstring(node) is None:
                    kind = ("class" if isinstance(node, ast.ClassDef)
                            else "function")
                    problems.append(
                        f"{rel}: public {kind} {qualname!r} "
                        f"(line {node.lineno}) has no docstring"
                    )
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--links", action="store_true",
                        help="check Markdown links and repo path tokens")
    parser.add_argument("--snippets", action="store_true",
                        help="run README python blocks and quick examples")
    parser.add_argument("--docstrings", action="store_true",
                        help="require docstrings on the public API of "
                             + " and ".join(DOCSTRING_PACKAGES))
    args = parser.parse_args()
    if not (args.links or args.snippets or args.docstrings):
        parser.error(
            "pick at least one of --links / --snippets / --docstrings"
        )

    problems: list[str] = []
    if args.links:
        problems += check_links()
    if args.snippets:
        problems += check_snippets()
    if args.docstrings:
        problems += check_docstrings()

    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} documentation problem(s)")
        return 1
    print("documentation checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
