"""Guard the pooled-attestation throughput against silent regression.

Re-runs the wall-clock harness (``benchmarks/bench_wallclock.py``),
re-emitting a fresh ``BENCH_wallclock.json``, and compares the fresh
``attest_rounds_pooled.ops_per_sec`` against the committed artifact at
the repo root. Fails (exit 1) if the fresh number drops more than
``--max-drop`` (default 20%) below the committed value.

Wall-clock numbers move with the host, so the committed artifact is a
*floor*, not a target: CI runs the quick profile and only trips on a
drop large enough to indicate a real fast-path regression, not machine
noise. Regenerate the committed artifact with a full
``bench_wallclock.py`` run whenever the fast paths legitimately change.

Usage::

    PYTHONPATH=src python tools/check_bench_regression.py [--quick]
        [--baseline BENCH_wallclock.json] [--max-drop 0.2]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

METRIC = ("attest_rounds_pooled", "ops_per_sec")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline",
                        default=str(REPO_ROOT / "BENCH_wallclock.json"),
                        help="committed artifact to compare against")
    parser.add_argument("--max-drop", type=float, default=0.20,
                        help="maximum tolerated fractional drop in pooled "
                             "attestation ops/sec (default 0.20)")
    parser.add_argument("--quick", action="store_true",
                        help="run the quick bench profile (CI)")
    parser.add_argument("--out",
                        default=str(REPO_ROOT / "BENCH_wallclock.json"),
                        help="where the fresh artifact is re-emitted")
    args = parser.parse_args(argv)

    baseline_path = Path(args.baseline)
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; nothing to compare",
              file=sys.stderr)
        return 1
    baseline = json.loads(baseline_path.read_text())
    committed = baseline["results"][METRIC[0]][METRIC[1]]

    import bench_wallclock

    bench_args = ["--min-speedup", "0", "--tables", "", "--out", args.out]
    if args.quick:
        bench_args.append("--quick")
    if "key_bits" in baseline:
        bench_args += ["--key-bits", str(baseline["key_bits"])]
    status = bench_wallclock.main(bench_args)
    if status != 0:
        return status

    fresh = json.loads(Path(args.out).read_text())
    current = fresh["results"][METRIC[0]][METRIC[1]]
    floor = committed * (1.0 - args.max_drop)
    verdict = "OK" if current >= floor else "FAIL"
    print(
        f"{verdict}: pooled attestation {current:,.1f} ops/sec vs committed "
        f"{committed:,.1f} (floor {floor:,.1f} at -{args.max_drop:.0%})"
    )
    if current < floor:
        print(
            "pooled attestation throughput regressed more than "
            f"{args.max_drop:.0%} from the committed artifact — inspect the "
            "crypto fast paths or regenerate BENCH_wallclock.json with a "
            "full run if the change is intentional",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
