"""Guard the committed benchmark artifacts against silent regression.

Re-runs each benchmark whose artifact is committed at the repo root and
compares its headline metric(s) against the committed values.
Fails (exit 1) if any fresh number drops more than ``--max-drop``
(default 20%) below its committed baseline:

- ``BENCH_wallclock.json`` — pooled-attestation throughput
  (``attest_rounds_pooled.ops_per_sec``), re-run with the baseline's
  key size; honours ``--quick``;
- ``BENCH_fleet_pipeline.json`` — fleet pipeline throughput
  (``fleet.rounds_per_sec``), re-run at the baseline's fleet size and
  key size (rounds/sec depends on fleet size, so ``--quick`` must not
  shrink the fleet);
- ``BENCH_flightrecorder_overhead.json`` — flight-recorded attestation
  throughput (``recorded.rounds_per_sec``), re-run at the baseline's
  fleet size and wave count; the benchmark's own ``--max-overhead``
  gate additionally fails the run if round tracking costs more than 2%
  over the untracked path;
- ``BENCH_shard_scale.json`` — sharded control-plane throughput at the
  guard cell (256 VMs; ``n256.s1`` and ``n256.s4`` rounds/sec), always
  re-run at that exact cell since rounds/sec is size-dependent, plus
  the forked-executor throughput at the same cell
  (``n256.s4.parallel``) re-timed at the committed worker count;
- ``BENCH_crypto_floor.json`` — three raw-speed floors at once:
  accelerated sign ops/sec (``sign.accel``), farm prefill keys/sec
  (``keygen.farm_auto``) and engine events/sec (``engine.events``);
  ``--quick`` shrinks the sign/engine profiles but the bench keeps the
  keygen profile at full size (keys/sec over too few keys is noise).

Wall-clock numbers move with the host, so the committed artifacts are
*floors*, not targets: CI only trips on a drop large enough to indicate
a real regression, not machine noise. Regenerate a committed artifact
with a full benchmark run whenever its fast paths legitimately change.

Usage::

    PYTHONPATH=src python tools/check_bench_regression.py [--quick]
        [--max-drop 0.2] [--only crypto_floor|wallclock|...]
"""

from __future__ import annotations

import argparse
import importlib
import json
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))


def _wallclock_args(baseline: dict, quick: bool) -> list[str]:
    extra = ["--quick"] if quick else []
    if "key_bits" in baseline:
        extra += ["--key-bits", str(baseline["key_bits"])]
    return extra


def _fleet_args(baseline: dict, quick: bool) -> list[str]:
    # rounds/sec is fleet-size dependent: always re-run at the
    # baseline's fleet size, even in --quick
    extra = ["--vms", str(baseline["results"]["num_vms"])]
    if "key_bits" in baseline:
        extra += ["--key-bits", str(baseline["key_bits"])]
    return extra


def _flightrecorder_args(baseline: dict, quick: bool) -> list[str]:
    # rounds/sec depends on the fleet size and on the on-demand/batched
    # mix, so re-run at the baseline's exact profile even in --quick
    extra = ["--vms", str(baseline["results"]["num_vms"]),
             "--waves", str(baseline["results"]["waves"])]
    if "key_bits" in baseline:
        extra += ["--key-bits", str(baseline["key_bits"])]
    return extra


def _shard_scale_args(baseline: dict, quick: bool) -> list[str]:
    # rounds/sec depends on the (fleet size, shard count) cell, so the
    # guard always re-runs the fixed 256-VM guard cell — present in
    # both the full sweep and the quick profile. The parallel guard
    # re-times the cell at the committed artifact's worker count; the
    # bench's own speedup gates stay out of the way (the guard compares
    # throughput floors, not speedups, so it works on any core count).
    extra = ["--sizes", "256", "--shards", "1,4",
             "--min-parallel-speedup", "0"]
    parallel = (
        baseline["results"]["cells"].get("n256", {}).get("s4", {})
        .get("parallel")
    )
    if parallel:
        extra += ["--workers", str(parallel["workers"])]
    if "key_bits" in baseline:
        extra += ["--key-bits", str(baseline["key_bits"])]
    return extra


def _crypto_floor_args(baseline: dict, quick: bool) -> list[str]:
    extra = ["--quick"] if quick else []
    if "key_bits" in baseline:
        extra += ["--key-bits", str(baseline["key_bits"])]
    return extra


#: name -> (artifact, benchmark module, metric paths+labels, extra args).
#: ``metrics`` is a list so one artifact can guard several floors.
GUARDS = {
    "wallclock": {
        "artifact": "BENCH_wallclock.json",
        "module": "bench_wallclock",
        "metrics": [
            (("attest_rounds_pooled", "ops_per_sec"),
             "pooled attestation ops/sec"),
        ],
        "extra_args": _wallclock_args,
    },
    "fleet_pipeline": {
        "artifact": "BENCH_fleet_pipeline.json",
        "module": "bench_fleet_pipeline",
        "metrics": [
            (("fleet", "rounds_per_sec"), "fleet pipeline rounds/sec"),
        ],
        "extra_args": _fleet_args,
    },
    "flightrecorder_overhead": {
        "artifact": "BENCH_flightrecorder_overhead.json",
        "module": "bench_flightrecorder_overhead",
        "metrics": [
            (("recorded", "rounds_per_sec"), "flight-recorded rounds/sec"),
        ],
        "extra_args": _flightrecorder_args,
    },
    "shard_scale": {
        "artifact": "BENCH_shard_scale.json",
        "module": "bench_shard_scale",
        "metrics": [
            (("cells", "n256", "s1", "rounds_per_sec"),
             "1-shard rounds/sec at 256 VMs"),
            (("cells", "n256", "s4", "rounds_per_sec"),
             "4-shard rounds/sec at 256 VMs"),
            (("cells", "n256", "s4", "parallel", "rounds_per_sec"),
             "4-shard forked-executor rounds/sec at 256 VMs"),
        ],
        "extra_args": _shard_scale_args,
    },
    "crypto_floor": {
        "artifact": "BENCH_crypto_floor.json",
        "module": "bench_crypto_floor",
        "metrics": [
            (("sign", "accel", "ops_per_sec"), "accelerated sign ops/sec"),
            (("keygen", "farm_auto", "keys_per_sec"),
             "farm prefill keys/sec"),
            (("engine", "events", "ops_per_sec"), "engine events/sec"),
        ],
        "extra_args": _crypto_floor_args,
    },
}


def _check(name: str, guard: dict, args: argparse.Namespace) -> int:
    baseline_path = REPO_ROOT / guard["artifact"]
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; nothing to compare",
              file=sys.stderr)
        return 1
    baseline = json.loads(baseline_path.read_text())

    # fresh numbers go to a scratch file: a quick-profile run must not
    # replace the committed full-run artifact it is compared against
    out = str(Path(tempfile.mkdtemp(prefix="bench_check_"))
              / guard["artifact"])
    bench_args = ["--min-speedup", "0", "--tables", "", "--out", out]
    bench_args += guard["extra_args"](baseline, args.quick)
    module = importlib.import_module(guard["module"])
    status = module.main(bench_args)
    if status != 0:
        return status

    fresh_results = json.loads(Path(out).read_text())["results"]
    worst = 0
    for path, label in guard["metrics"]:
        committed = baseline["results"]
        fresh = fresh_results
        for key in path:
            committed = committed[key]
            fresh = fresh[key]
        floor = committed * (1.0 - args.max_drop)
        verdict = "OK" if fresh >= floor else "FAIL"
        print(
            f"{verdict}: {label} {fresh:,.1f} vs committed "
            f"{committed:,.1f} (floor {floor:,.1f} at -{args.max_drop:.0%})"
        )
        if fresh < floor:
            print(
                f"{label} regressed more than {args.max_drop:.0%} from "
                f"the committed artifact — inspect the change or regenerate "
                f"{guard['artifact']} with a full run if it is intentional",
                file=sys.stderr,
            )
            worst = 1
    return worst


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--max-drop", type=float, default=0.20,
                        help="maximum tolerated fractional drop for every "
                             "guarded metric (default 0.20)")
    parser.add_argument("--quick", action="store_true",
                        help="run quick bench profiles where the metric "
                             "allows it (CI)")
    parser.add_argument("--only", choices=sorted(GUARDS),
                        help="check a single artifact instead of all")
    args = parser.parse_args(argv)

    names = [args.only] if args.only else sorted(GUARDS)
    worst = 0
    for name in names:
        print(f"--- {name} ---")
        worst = max(worst, _check(name, GUARDS[name], args))
    return worst


if __name__ == "__main__":
    raise SystemExit(main())
