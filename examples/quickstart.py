"""Quickstart: launch a monitored VM and attest all four properties.

Builds a three-server CloudMonatt cloud, launches a VM with security
properties attached, and walks through the attestation API of paper
Table 1: startup integrity, runtime integrity, covert-channel freedom
and CPU availability — all healthy on a clean cloud.

Run: ``python examples/quickstart.py``
"""

from repro import CloudMonatt, SecurityProperty


def main() -> None:
    print("Building a CloudMonatt cloud (3 secure servers)...")
    cloud = CloudMonatt(num_servers=3, seed=42)
    alice = cloud.register_customer("alice")

    print("Launching a VM with security properties attached...")
    vm = alice.launch_vm(
        "small",
        "ubuntu",
        properties=[
            SecurityProperty.STARTUP_INTEGRITY,
            SecurityProperty.RUNTIME_INTEGRITY,
            SecurityProperty.COVERT_CHANNEL_FREEDOM,
            SecurityProperty.CPU_AVAILABILITY,
        ],
        workload={"name": "app"},
    )
    print(f"  VM {vm.vid}: {'accepted' if vm.accepted else 'REJECTED'}")
    print("  launch stages (ms):")
    for stage, duration in vm.stage_times_ms.items():
        print(f"    {stage:22s} {duration:8.0f}")
    print(f"  startup attestation: {vm.report.explanation}")

    print("\nAttesting each security property at runtime:")
    for prop in (
        SecurityProperty.RUNTIME_INTEGRITY,
        SecurityProperty.COVERT_CHANNEL_FREEDOM,
        SecurityProperty.CPU_AVAILABILITY,
    ):
        result = alice.attest(vm.vid, prop)
        status = "healthy" if result.report.healthy else "COMPROMISED"
        print(f"  {prop.value:28s} {status:12s} ({result.attest_ms:6.0f} ms)")
        print(f"    -> {result.report.explanation}")

    print("\nStarting periodic attestation (every 30 s of cloud time)...")
    alice.start_periodic_attestation(
        vm.vid, SecurityProperty.CPU_AVAILABILITY, frequency_ms=30_000.0
    )
    cloud.run_for(100_000.0)
    results = alice.periodic_results(vm.vid, SecurityProperty.CPU_AVAILABILITY)
    print(f"  received {len(results)} verified periodic reports:")
    for push in results:
        print(f"    #{push.seq}: healthy={push.report.healthy}")
    alice.stop_periodic_attestation(vm.vid, SecurityProperty.CPU_AVAILABILITY)

    alice.terminate_vm(vm.vid)
    print("\nVM terminated. Done.")


if __name__ == "__main__":
    main()
