"""Protocol verification (paper §7.2.2).

Runs the symbolic Dolev-Yao verifier over the attestation protocol of
paper Fig. 3 and prints the verdict for every property — the six
secrecy / integrity / authentication properties the paper verifies with
ProVerif, plus freshness and server-anonymity analyses. Then analyzes
three deliberately weakened variants to show the verifier finds the
attacks the removed protections were preventing.

Run: ``python examples/protocol_verification.py``
"""

from repro.verification import ProtocolVariant, ProtocolVerifier


def show(variant: ProtocolVariant) -> None:
    verifier = ProtocolVerifier(variant)
    print(f"\n=== {variant.value} protocol ===")
    for result in verifier.verify_all():
        status = "verified    " if result.holds else "ATTACK FOUND"
        print(f"  [{status}] {result.property_id} {result.description}")
        if not result.holds and result.witness:
            print(f"               witness: {result.witness}")


def main() -> None:
    show(ProtocolVariant.STANDARD)
    show(ProtocolVariant.PLAINTEXT)
    show(ProtocolVariant.NO_NONCES)
    show(ProtocolVariant.IDENTITY_KEY_REUSE)


if __name__ == "__main__":
    main()
