"""Continuous monitoring: a declarative policy drives standing coverage.

The paper's thesis is *continuous* security health monitoring, not
request-scoped attestation. This walkthrough registers a versioned
monitoring policy over a small fleet and lets the policy scheduler do
the rest:

1. a healthy fleet under a runtime-integrity policy — periodic rounds
   fire on their own, every alarm stays OK;
2. hidden-service malware lands on one VM — its alarm walks
   OK -> WARNING -> CRITICAL (threshold-with-hysteresis, so one bad
   sample never pages) and the observatory records exactly one
   critical alert;
3. the malware is killed — the same hysteresis clears the alarm back
   to OK after a streak of healthy rounds;
4. a v2 of the policy adds a CPU-availability check in place: alarm
   state and firing cadence survive the migration.

A ready-to-edit policy document ships at
``examples/policies/continuous_monitoring.json``; validate or inspect
it without building a cloud via::

    python -m repro policy validate examples/policies/continuous_monitoring.json
    python -m repro policy show examples/policies/continuous_monitoring.json

Run: ``python examples/continuous_monitoring.py``
"""

from repro import CloudMonatt, SecurityProperty
from repro.guest import HiddenServiceMalware

POLICY_V1 = {
    "name": "walkthrough",
    "version": 1,
    "entities": [],  # filled in with the launched VM ids
    "checks": [
        {
            "name": "runtime",
            "property": "runtime_integrity",
            "period_ms": 2000.0,
            "staleness_budget_ms": 6000.0,
            "warning_after": 2,
            "critical_after": 4,
            "clear_after": 2,
        },
    ],
    "notifications": {"observatory": True, "audit": True},
}


def show_entries(status: dict) -> None:
    for entry in status["entries"]:
        flag = " STALE" if entry["stale"] else ""
        print(
            f"  {entry['vid']} {entry['check']:<12} state={entry['state']:<8}"
            f" fired={entry['fired']}{flag}"
        )


def show_transitions(status: dict, after_ms: float = 0.0) -> None:
    for t in status["transitions"]:
        if t["time_ms"] >= after_ms:
            print(
                f"  t={t['time_ms']:8.0f} ms  {t['vid']} {t['check']}: "
                f"{t['old_state']} -> {t['new_state']} ({t['verdict']})"
            )


def main() -> None:
    print("Building a CloudMonatt cloud (2 secure servers, 2 VMs)...")
    cloud = CloudMonatt(num_servers=2, seed=11, telemetry_enabled=True)
    alice = cloud.register_customer("alice")
    vms = [
        alice.launch_vm(
            "small", "ubuntu",
            properties=[SecurityProperty.RUNTIME_INTEGRITY,
                        SecurityProperty.CPU_AVAILABILITY],
            workload={"name": "idle"},
        )
        for _ in range(2)
    ]
    vids = [str(vm.vid) for vm in vms]

    print("\n1. Register the v1 policy and let the scheduler run 8 s:")
    applied = alice.register_policy(dict(POLICY_V1, entities=vids))
    print(f"  {applied['status']}: '{applied['policy']}' v{applied['version']},"
          f" {applied['created']} schedule entries")
    cloud.run_for(8_000.0)
    show_entries(alice.policy_status())

    print("\n2. Hidden-service malware lands on", vids[0])
    guest = cloud.server_of(vms[0].vid).hosted[vms[0].vid].guest
    malware = HiddenServiceMalware().infect(guest)
    infected_at = cloud.now
    cloud.run_for(12_000.0)
    status = alice.policy_status()
    show_entries(status)
    show_transitions(status, after_ms=infected_at)
    pages = [
        record for record in cloud.observatory.alert_records()
        if record["rule"] == "policy_alarm_critical"
    ]
    print(f"  observatory pages: {len(pages)} critical alert(s)")

    print("\n3. Kill the malware; hysteresis clears the alarm:")
    guest.kill(malware.pid)
    cleaned_at = cloud.now
    cloud.run_for(10_000.0)
    status = alice.policy_status()
    show_entries(status)
    show_transitions(status, after_ms=cleaned_at)

    print("\n4. Migrate to v2 in place (adds a CPU-availability check):")
    v2 = dict(POLICY_V1, entities=vids, version=2)
    v2["checks"] = POLICY_V1["checks"] + [{
        "name": "availability",
        "property": "cpu_availability",
        "period_ms": 8000.0,
        "staleness_budget_ms": 24000.0,
        "window_ms": 200.0,
    }]
    applied = alice.register_policy(v2)
    print(f"  {applied['status']}: v{applied['version']},"
          f" {applied['created']} new entries,"
          f" {applied['migrated']} migrated in place")
    cloud.run_for(10_000.0)
    show_entries(alice.policy_status())

    print("\nDone. Same seed + same policy => identical timelines and")
    print("telemetry; see DESIGN.md section 8 for the scheduler design.")


if __name__ == "__main__":
    main()
