"""Case study I (paper §4.2): startup integrity attestation.

Shows all three launch outcomes:
1. a pristine image on a pristine platform launches and attests healthy;
2. a tampered VM image is detected at launch and the VM is rejected;
3. a server with a backdoored hypervisor fails platform attestation.

Run: ``python examples/startup_integrity.py``
"""

from repro import CloudMonatt, SecurityProperty
from repro.attacks.image_tampering import tamper_image, tamper_platform
from repro.lifecycle.flavors import VmImage
from repro.monitors.integrity_unit import SoftwareInventory


def pristine_launch() -> None:
    print("1) Pristine image on a pristine platform")
    cloud = CloudMonatt(num_servers=2, seed=1)
    alice = cloud.register_customer("alice")
    result = alice.launch_vm(
        "small", "fedora", properties=[SecurityProperty.STARTUP_INTEGRITY]
    )
    print(f"   launch accepted: {result.accepted}")
    print(f"   report: {result.report.explanation}\n")


def tampered_image_launch() -> None:
    print("2) Tampered VM image (malware appended to the image bytes)")
    cloud = CloudMonatt(num_servers=2, seed=2)
    alice = cloud.register_customer("alice")
    pristine = cloud.images["fedora"]
    # the provider's image store got corrupted: same name, altered bytes
    cloud.controller.images["fedora"] = VmImage(
        name="fedora",
        size_mb=pristine.size_mb,
        content=tamper_image(pristine.content),
    )
    result = alice.launch_vm(
        "small", "fedora", properties=[SecurityProperty.STARTUP_INTEGRITY]
    )
    print(f"   launch accepted: {result.accepted}")
    print(f"   report: {result.report.explanation}\n")


def tampered_platform_launch() -> None:
    print("3) Backdoored hypervisor: §5.1's retry-on-another-server")
    cloud = CloudMonatt(num_servers=1, seed=3)
    cloud.servers.clear()
    cloud.controller.database._servers.clear()
    # the tampered server advertises more capacity, so placement tries
    # it first; a pristine server stands by
    cloud.add_server(
        num_pcpus=8,
        platform_inventory=tamper_platform(SoftwareInventory.pristine_platform()),
        trust_platform=False,
    )
    good = cloud.add_server(num_pcpus=2)
    alice = cloud.register_customer("alice")
    result = alice.launch_vm(
        "small", "fedora", properties=[SecurityProperty.STARTUP_INTEGRITY]
    )
    print(f"   launch accepted: {result.accepted} "
          f"(after retrying on {good.server_id})")
    print(f"   report: {result.report.explanation}")
    retried = [
        r for r in cloud.controller.provenance
        if r.event == "platform_failed_retrying"
    ]
    print(f"   first attempt failed: {retried[0].payload['reason']}")


def main() -> None:
    pristine_launch()
    tampered_image_launch()
    tampered_platform_launch()


if __name__ == "__main__":
    main()
