"""Case study II (paper §4.3): runtime integrity via VM introspection.

A rootkit infects the guest and hides its processes from the guest's
own task listing. The VMI tool in the hypervisor's Monitor Module reads
the true process table from guest memory; the attestation report
exposes the malware, and the customer's own comparison of the attested
list against the in-guest view pinpoints the hidden processes.

Run: ``python examples/runtime_integrity_vmi.py``
"""

from repro import CloudMonatt, SecurityProperty
from repro.guest import Rootkit
from repro.properties.runtime_integrity import detect_hidden_tasks


def main() -> None:
    cloud = CloudMonatt(num_servers=2, seed=9)
    alice = cloud.register_customer("alice")
    vm = alice.launch_vm(
        "small",
        "ubuntu",
        properties=[
            SecurityProperty.STARTUP_INTEGRITY,
            SecurityProperty.RUNTIME_INTEGRITY,
        ],
    )
    print(f"VM {vm.vid} launched; startup attestation: {vm.report.healthy}")

    clean = alice.attest(vm.vid, SecurityProperty.RUNTIME_INTEGRITY)
    print(f"before infection: healthy={clean.report.healthy} "
          f"({clean.report.explanation})")

    print("\n-- attacker infects the guest with a rootkit --")
    server = cloud.server_of(vm.vid)
    guest = server.hosted[vm.vid].guest
    Rootkit().infect(guest)

    # the compromised guest lies to its own administrator:
    inside_view = server.vmi.reported_tasks(vm.vid)
    print(f"guest's own task list ({len(inside_view)} tasks): "
          f"{[t['name'] for t in inside_view]}")

    infected = alice.attest(vm.vid, SecurityProperty.RUNTIME_INTEGRITY)
    print(f"\nattestation verdict: healthy={infected.report.healthy}")
    print(f"  {infected.report.explanation}")

    # the customer compares the attested (true) list with the inside view
    attested_list = server.vmi.running_tasks(vm.vid)
    hidden = detect_hidden_tasks(attested_list, inside_view)
    print(f"hidden processes the guest concealed: "
          f"{[(t['pid'], t['name']) for t in hidden]}")


if __name__ == "__main__":
    main()
