"""Case study III (paper §4.4): covert-channel detection.

Two colluding VMs share a CPU: the sender modulates its run-interval
durations to leak bits; the receiver reads them from its own execution
gaps. CloudMonatt's interval-histogram monitor (30 Trust Evidence
Registers) exposes the bimodal pattern, and periodic attestation with a
migration policy evicts the sender.

Run: ``python examples/covert_channel_detection.py``
"""

from repro import CloudMonatt, SecurityProperty
from repro.controller.response import ResponseAction


def main() -> None:
    cloud = CloudMonatt(num_servers=2, num_pcpus=1, seed=21)
    cloud.controller.response.set_policy(
        SecurityProperty.COVERT_CHANNEL_FREEDOM, ResponseAction.MIGRATE
    )
    alice = cloud.register_customer("alice")

    print("Launching a covert-channel sender and a colluding receiver "
          "on one CPU...")
    sender = alice.launch_vm(
        "small",
        "ubuntu",
        properties=[SecurityProperty.COVERT_CHANNEL_FREEDOM,
                    SecurityProperty.STARTUP_INTEGRITY],
        workload={"name": "covert_channel_sender",
                  "params": {"bits": [1, 0, 1, 1, 0, 0, 1, 0]}},
        pins=[0],
    )
    sender_server = cloud.controller.database.vm(sender.vid).server
    alice.launch_vm(
        "small", "ubuntu", workload={"name": "cpu_bound"}, pins=[0],
        force_server=str(sender_server),
    )
    print(f"  sender {sender.vid} on {sender_server}")

    print("\nAttesting covert-channel freedom of the sender VM...")
    result = alice.attest(sender.vid, SecurityProperty.COVERT_CHANNEL_FREEDOM)
    print(f"  healthy: {result.report.healthy}")
    print(f"  {result.report.explanation}")
    distribution = result.report.details["distribution"]
    print("  interval distribution (non-zero bins):")
    for bin_index, mass in enumerate(distribution):
        if mass > 0.005:
            bar = "#" * int(50 * mass)
            print(f"    ({bin_index:2d},{bin_index + 1:2d}] {mass:6.3f} {bar}")

    if result.response:
        print(f"\nremediation: {result.response['action']} "
              f"({result.response['reaction_ms']:.0f} ms)")
        new_server = cloud.controller.database.vm(sender.vid).server
        print(f"  sender now on {new_server} — separated from its receiver,")
        print("  so the channel is severed even though the sender keeps")
        print("  modulating its CPU usage:")
        verdict = alice.attest(sender.vid, SecurityProperty.COVERT_CHANNEL_FREEDOM)
        print(f"  post-migration attestation healthy: {verdict.report.healthy}")
        print("  (the persistent pattern would justify escalating the "
              "response to termination)")


if __name__ == "__main__":
    main()
