"""Fault tolerance: transient faults absorbed, persistent faults degraded.

Walks the contract of docs/FAILURE_MODEL.md end to end on one cloud:

1. a clean attestation as the baseline;
2. a single injected drop on the controller <-> attestation-server leg,
   absorbed by retries — the verified report is byte-identical to the
   baseline;
3. a persistent blackhole on the same leg: the circuit breaker opens
   and the customer receives a signed, degraded UNREACHABLE verdict
   (never an exception, never a forged healthy report);
4. the fault clears, the breaker's reset window passes, a half-open
   probe succeeds, and the service recovers.

Run: ``python examples/fault_tolerance.py``
"""

from repro import CloudMonatt, SecurityProperty
from repro.network import FaultInjector, FaultSpec
from repro.resilience import LEG_CONTROLLER_AS


def describe(result) -> str:
    verdict = result.report.details.get("verdict", "OK")
    status = "healthy" if result.report.healthy else f"unhealthy ({verdict})"
    return f"{status}: {result.report.explanation}"


def main() -> None:
    print("Building a CloudMonatt cloud (2 secure servers)...")
    cloud = CloudMonatt(num_servers=2, seed=7)
    alice = cloud.register_customer("alice")
    vm = alice.launch_vm(
        "small", "ubuntu", properties=[SecurityProperty.STARTUP_INTEGRITY]
    )
    print(f"  VM {vm.vid}: {'accepted' if vm.accepted else 'REJECTED'}")

    print("\n1. Clean attestation (baseline):")
    baseline = alice.attest(vm.vid, SecurityProperty.STARTUP_INTEGRITY)
    print(f"  {describe(baseline)}")

    print("\n2. One transient drop on the controller<->AS leg:")
    cloud.network.install_fault_injector(
        FaultInjector(
            cloud.rng.child("demo-faults"),
            {LEG_CONTROLLER_AS: FaultSpec(drop=1.0, limit=1)},
        )
    )
    absorbed = alice.attest(vm.vid, SecurityProperty.STARTUP_INTEGRITY)
    print(f"  {describe(absorbed)}")
    identical = absorbed.report == baseline.report
    print(f"  report byte-identical to baseline: {identical}")

    print("\n3. Persistent blackhole on the same leg:")
    cloud.network.install_fault_injector(
        FaultInjector(
            cloud.rng.child("demo-blackhole"),
            {LEG_CONTROLLER_AS: FaultSpec(drop=1.0)},
        )
    )
    degraded = alice.attest(vm.vid, SecurityProperty.STARTUP_INTEGRITY)
    print(f"  {describe(degraded)}")
    breaker = cloud.controller.attest_service.breaker_state()
    print(f"  controller breaker for the attestation server: {breaker}")

    print("\n4. Fault clears; after the 60 s reset window a probe recovers:")
    cloud.network.install_fault_injector(None)
    cloud.run_for(61_000.0)
    recovered = alice.attest(vm.vid, SecurityProperty.STARTUP_INTEGRITY)
    print(f"  {describe(recovered)}")
    print(
        "  breaker state: "
        f"{cloud.controller.attest_service.breaker_state()}"
    )

    alice.terminate_vm(vm.vid)
    print("\nVM terminated. Done.")


if __name__ == "__main__":
    main()
