"""Case study IV (paper §4.5): CPU availability attack and remediation.

An attacker VM exploits the Xen credit scheduler's boost mechanism
(IPI wake-ups + tick evasion) to starve a co-resident victim. The VMM
Profile Tool's relative-CPU-usage measurement exposes the starvation;
a migration response restores the victim's SLA.

Run: ``python examples/availability_attack_remediation.py``
"""

from repro import CloudMonatt, SecurityProperty
from repro.controller.response import ResponseAction


def main() -> None:
    cloud = CloudMonatt(num_servers=2, num_pcpus=1, seed=33)
    cloud.controller.response.set_policy(
        SecurityProperty.CPU_AVAILABILITY, ResponseAction.MIGRATE
    )
    alice = cloud.register_customer("alice")

    victim = alice.launch_vm(
        "small",
        "ubuntu",
        properties=[SecurityProperty.CPU_AVAILABILITY,
                    SecurityProperty.STARTUP_INTEGRITY],
        workload={"name": "database"},
        pins=[0],
    )
    victim_server = cloud.controller.database.vm(victim.vid).server
    print(f"victim {victim.vid} running a database service on {victim_server}")

    baseline = alice.attest(victim.vid, SecurityProperty.CPU_AVAILABILITY)
    print(f"baseline availability: {baseline.report.explanation}")

    print("\n-- attacker co-locates and runs the boost-stealing attack --")
    alice.launch_vm(
        "medium",
        "ubuntu",
        workload={"name": "cpu_availability_attack"},
        pins=[0, 0],
        force_server=str(victim_server),
    )

    attacked = alice.attest(victim.vid, SecurityProperty.CPU_AVAILABILITY)
    print(f"under attack: healthy={attacked.report.healthy}")
    print(f"  {attacked.report.explanation}")
    if attacked.response:
        print(f"  remediation: {attacked.response['action']} "
              f"({attacked.response['reaction_ms']:.0f} ms)")

    new_server = cloud.controller.database.vm(victim.vid).server
    print(f"\nvictim migrated: {victim_server} -> {new_server}")
    recovered = alice.attest(victim.vid, SecurityProperty.CPU_AVAILABILITY)
    print(f"after migration: healthy={recovered.report.healthy}")
    print(f"  {recovered.report.explanation}")


if __name__ == "__main__":
    main()
