"""Multi-source covert-channel monitoring (paper §4.4.3).

A memory-bus covert channel keeps its CPU usage perfectly uniform, so
the Fig. 5 interval monitor alone cannot see it — but the bus-lock
monitor can. This example runs the bus sender, shows the CPU-interval
monitor giving it a clean bill of health, then the combined
interpretation catching it; and demonstrates the paper's randomized
source switching.

Run: ``python examples/multi_source_covert_monitoring.py``
"""

from repro import CloudMonatt, SecurityProperty
from repro.attacks import BusCovertChannelSender
from repro.common.identifiers import VmId
from repro.common.rng import DeterministicRng
from repro.monitors import BusLatencyProbe, BusLockHistogram, RunIntervalHistogram
from repro.monitors.monitor_module import (
    MEAS_BUS_LOCK_HISTOGRAM,
    MEAS_CPU_INTERVAL_HISTOGRAM,
)
from repro.properties import CovertChannelInterpreter
from repro.properties.covert_channel import RandomSourceSelector
from repro.xen import CpuBoundWorkload, Hypervisor

BITS = [1, 0, 1, 1, 0, 0, 1, 0]


def main() -> None:
    print("Running a memory-bus covert channel across two cores...")
    hv = Hypervisor(num_pcpus=2)
    intervals = RunIntervalHistogram()
    bus = BusLockHistogram()
    hv.add_monitor(intervals)
    hv.add_monitor(bus)
    sender = BusCovertChannelSender(BITS, symbol_ms=10.0, high_rate=20.0)
    hv.create_domain(VmId("sender"), sender, pcpus=[1])
    hv.create_domain(VmId("receiver"), CpuBoundWorkload(), pcpus=[0])
    probe = BusLatencyProbe(hv, VmId("receiver"))
    probe.arm(2000.0)
    hv.run_for(5000.0)

    decoded = probe.decode(threshold_factor=1.3, symbol_ms=10.0)
    print(f"  receiver decoded {len(decoded)} bits cross-core "
          f"at ~{sender.bandwidth_bps:.0f} bps")

    interpreter = CovertChannelInterpreter()
    cpu_only = interpreter.interpret(
        VmId("sender"),
        {MEAS_CPU_INTERVAL_HISTOGRAM: intervals.histogram(VmId("sender"))},
    )
    print(f"\nCPU-interval monitor alone: healthy={cpu_only.healthy}")
    print(f"  -> {cpu_only.explanation}")

    combined = interpreter.interpret(
        VmId("sender"),
        {
            MEAS_CPU_INTERVAL_HISTOGRAM: intervals.histogram(VmId("sender")),
            MEAS_BUS_LOCK_HISTOGRAM: bus.histogram(VmId("sender")),
        },
    )
    print(f"with the bus-lock monitor:  healthy={combined.healthy}")
    print(f"  -> {combined.explanation}")

    print("\nRandomized source switching over periodic rounds:")
    selector = RandomSourceSelector(DeterministicRng(7))
    for round_index in range(6):
        sources = selector.next_measurements()
        measurements = {}
        if MEAS_CPU_INTERVAL_HISTOGRAM in sources:
            measurements[MEAS_CPU_INTERVAL_HISTOGRAM] = intervals.histogram(
                VmId("sender"))
        if MEAS_BUS_LOCK_HISTOGRAM in sources:
            measurements[MEAS_BUS_LOCK_HISTOGRAM] = bus.histogram(VmId("sender"))
        verdict = interpreter.interpret(VmId("sender"), measurements)
        label = sources[0].split(".")[1]
        print(f"  round {round_index + 1}: watching {label:24s} "
              f"-> {'CAUGHT' if not verdict.healthy else 'missed'}")

    print("\nFull-stack attestation (both sources in the property spec):")
    cloud = CloudMonatt(num_servers=1, num_pcpus=2, seed=44)
    alice = cloud.register_customer("alice")
    vm = alice.launch_vm(
        "small", "ubuntu",
        properties=[SecurityProperty.COVERT_CHANNEL_FREEDOM,
                    SecurityProperty.STARTUP_INTEGRITY],
        workload={"name": "bus_covert_channel_sender"},
        pins=[1],
    )
    alice.launch_vm("small", "ubuntu", workload={"name": "cpu_bound"}, pins=[0])
    result = alice.attest(vm.vid, SecurityProperty.COVERT_CHANNEL_FREEDOM)
    print(f"  verdict: healthy={result.report.healthy}")
    print(f"  -> {result.report.explanation}")


if __name__ == "__main__":
    main()
